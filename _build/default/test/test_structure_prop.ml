(* Property: with structural operations in the mix, any accepted
   concurrent schedule must be equivalent to replaying exactly the
   committed transactions serially, in commit order.

   The conservative M-flag rules guarantee that a committed restructure
   conflicts with every concurrent access into the same reference table,
   so accepted schedules only combine operations on disjoint parents —
   which is what makes path-based serial replay a sound oracle. The
   property would catch both under-aborting (merged state diverges from
   serial replay) and tree corruption (replay walk fails). *)

open Afs_core
module P = Afs_util.Pagepath
module Xrng = Afs_util.Xrng

let ok = Helpers.ok
let bytes = Helpers.bytes

(* The base layout: root -> 3 children -> 2 grandchildren each. *)
let children = 3
let grandchildren = 2

type op =
  | Write_leaf of int * int * string
  | Write_child of int * string
  | Insert_under of int * string  (** Append a page under child i. *)
  | Remove_first_under of int  (** Remove grandchild 0 of child i. *)

let build_base srv =
  let f = ok (Server.create_file srv ~data:(bytes "root") ()) in
  let v = ok (Server.create_version srv f) in
  for i = 0 to children - 1 do
    let child =
      ok
        (Server.insert_page srv v ~parent:P.root ~index:i
           ~data:(bytes (Printf.sprintf "c%d" i)) ())
    in
    for j = 0 to grandchildren - 1 do
      ignore
        (ok
           (Server.insert_page srv v ~parent:child ~index:j
              ~data:(bytes (Printf.sprintf "g%d%d" i j)) ()))
    done
  done;
  ok (Server.commit srv v);
  f

let apply_op srv version = function
  | Write_leaf (i, j, s) -> Server.write_page srv version (P.of_list [ i; j ]) (bytes s)
  | Write_child (i, s) -> Server.write_page srv version (P.of_list [ i ]) (bytes s)
  | Insert_under (i, s) ->
      Result.map ignore
        (Server.insert_page srv version ~parent:(P.of_list [ i ]) ~index:grandchildren
           ~data:(bytes s) ())
  | Remove_first_under i -> Server.remove_page srv version ~parent:(P.of_list [ i ]) ~index:0

let apply_txn srv version ops =
  List.iter (fun op -> ok (apply_op srv version op)) ops

(* Observable state: the whole tree as (path, data) pairs. *)
let snapshot srv f =
  let cur = ok (Server.current_version srv f) in
  let rec walk path acc =
    let data = Helpers.str (ok (Server.read_page srv cur path)) in
    let info = ok (Server.page_info srv cur path) in
    let acc = (P.to_string path, data) :: acc in
    let rec each i acc =
      if i >= info.Server.nrefs then acc else each (i + 1) (walk (P.child path i) acc)
    in
    each 0 acc
  in
  List.sort compare (walk P.root [])

(* {2 Generator} *)

let gen_op rng =
  match Xrng.int rng 5 with
  | 0 | 1 ->
      Write_leaf
        (Xrng.int rng children, Xrng.int rng grandchildren,
         Printf.sprintf "L%d" (Xrng.int rng 1000))
  | 2 -> Write_child (Xrng.int rng children, Printf.sprintf "C%d" (Xrng.int rng 1000))
  | 3 -> Insert_under (Xrng.int rng children, Printf.sprintf "N%d" (Xrng.int rng 1000))
  | _ -> Remove_first_under (Xrng.int rng children)

(* At most one structure op per transaction, placed last, so every op's
   path is valid against the shared base snapshot. *)
let gen_txn rng =
  let data_ops =
    List.init (1 + Xrng.int rng 2) (fun _ ->
        match gen_op rng with
        | Write_leaf _ as op -> op
        | Write_child _ as op -> op
        | Insert_under (i, _) -> Write_child (i, "C-fallback")
        | Remove_first_under i -> Write_child (i, "C-fallback2"))
  in
  if Xrng.bool rng then
    let structure =
      match gen_op rng with
      | Insert_under _ as op -> op
      | Remove_first_under _ as op -> op
      | Write_leaf (i, _, _) -> Insert_under (i, "N-extra")
      | Write_child (i, _) -> Remove_first_under i
    in
    data_ops @ [ structure ]
  else data_ops

let run_concurrent seed ntxns =
  let _, srv = Helpers.fresh_server () in
  let f = build_base srv in
  let rng = Xrng.create seed in
  let txns = List.init ntxns (fun _ -> gen_txn rng) in
  (* All versions created up front: fully concurrent. *)
  let versions = List.map (fun _ -> ok (Server.create_version srv f)) txns in
  List.iter2 (fun ops v -> apply_txn srv v ops) txns versions;
  let committed =
    List.filter_map
      (fun (ops, v) ->
        match Server.commit srv v with
        | Ok () -> Some ops
        | Error Errors.Conflict -> None
        | Error e -> Alcotest.failf "commit: %s" (Errors.to_string e))
      (List.combine txns versions)
  in
  (committed, snapshot srv f)

let run_serial committed =
  let _, srv = Helpers.fresh_server () in
  let f = build_base srv in
  List.iter
    (fun ops ->
      let v = ok (Server.create_version srv f) in
      apply_txn srv v ops;
      ok (Server.commit srv v))
    committed;
  snapshot srv f

let prop_replay_equivalence =
  QCheck2.Test.make ~name:"accepted schedules equal serial replay" ~count:200
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d txns=%d" seed n)
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 2 6))
    (fun (seed, ntxns) ->
      let committed, concurrent_state = run_concurrent seed ntxns in
      let serial_state = run_serial committed in
      (* The first committer can never conflict, and the merged state must
         match the serial replay exactly. *)
      List.length committed >= 1 && concurrent_state = serial_state)

let prop_structure_vs_access_conflicts =
  (* Directed check of the conservative rule: a committed restructure of a
     table conflicts with any concurrent access through that table, in
     both commit orders. *)
  QCheck2.Test.make ~name:"restructure vs access always conflicts" ~count:100
    ~print:(fun (i, j, first) -> Printf.sprintf "child=%d leaf=%d structure_first=%b" i j first)
    QCheck2.Gen.(triple (int_range 0 (children - 1)) (int_range 0 (grandchildren - 1)) bool)
    (fun (i, j, structure_first) ->
      let _, srv = Helpers.fresh_server () in
      let f = build_base srv in
      let restructurer = ok (Server.create_version srv f) in
      let accessor = ok (Server.create_version srv f) in
      ok (apply_op srv restructurer (Remove_first_under i));
      let _ = ok (Server.read_page srv accessor (P.of_list [ i; j ])) in
      ok (apply_op srv accessor (Write_leaf (i, j, "x")));
      let first, second = if structure_first then (restructurer, accessor) else (accessor, restructurer) in
      ok (Server.commit srv first);
      match Server.commit srv second with
      | Error Errors.Conflict -> true
      | Ok () -> false
      | Error e -> Alcotest.failf "unexpected: %s" (Errors.to_string e))

let prop_disjoint_structure_ops_merge =
  (* Inserts under different children always merge, either order. *)
  QCheck2.Test.make ~name:"disjoint restructures merge" ~count:100
    ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
    QCheck2.Gen.(int_range 1 100000)
    (fun seed ->
      let rng = Xrng.create seed in
      let i = Xrng.int rng children in
      let k =
        let k = Xrng.int rng children in
        if k = i then (k + 1) mod children else k
      in
      let _, srv = Helpers.fresh_server () in
      let f = build_base srv in
      let va = ok (Server.create_version srv f) in
      let vb = ok (Server.create_version srv f) in
      ok (apply_op srv va (Insert_under (i, "A")));
      ok (apply_op srv vb (Insert_under (k, "B")));
      ok (Server.commit srv va);
      (match Server.commit srv vb with
      | Ok () -> ()
      | Error e -> Alcotest.failf "merge refused: %s" (Errors.to_string e));
      let cur = ok (Server.current_version srv f) in
      let ni = (ok (Server.page_info srv cur (P.of_list [ i ]))).Server.nrefs in
      let nk = (ok (Server.page_info srv cur (P.of_list [ k ]))).Server.nrefs in
      ni = grandchildren + 1 && nk = grandchildren + 1)

let () =
  Alcotest.run "structure-properties"
    [
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest prop_replay_equivalence;
          QCheck_alcotest.to_alcotest prop_structure_vs_access_conflicts;
          QCheck_alcotest.to_alcotest prop_disjoint_structure_ops_merge;
        ] );
    ]
