open Afs_core
open Afs_naming
module Capability = Afs_util.Capability

let quick = Helpers.quick
let ok = Helpers.ok

let setup () =
  let _, srv = Helpers.fresh_server () in
  let cl = Client.connect srv in
  let dir = ok (Directory.create cl ~buckets:4 ()) in
  (srv, cl, dir)

let some_cap srv n =
  ok (Server.create_file srv ~data:(Helpers.bytes (Printf.sprintf "file-%d" n)) ())

let check_cap msg expected = function
  | Some got -> Alcotest.(check bool) msg true (Capability.equal expected got)
  | None -> Alcotest.failf "%s: name missing" msg

let test_enter_lookup () =
  let srv, _, dir = setup () in
  let cap = some_cap srv 1 in
  ok (Directory.enter dir "readme.txt" cap);
  check_cap "found" cap (ok (Directory.lookup dir "readme.txt"));
  Alcotest.(check (option reject)) "absent name" None
    (Option.map ignore (ok (Directory.lookup dir "missing")))

let test_rebind_replaces () =
  let srv, _, dir = setup () in
  let c1 = some_cap srv 1 and c2 = some_cap srv 2 in
  ok (Directory.enter dir "name" c1);
  ok (Directory.enter dir "name" c2);
  check_cap "rebound" c2 (ok (Directory.lookup dir "name"));
  Alcotest.(check (list string)) "single entry" [ "name" ] (ok (Directory.list_names dir))

let test_remove () =
  let srv, _, dir = setup () in
  ok (Directory.enter dir "doomed" (some_cap srv 1));
  Alcotest.(check bool) "removed" true (ok (Directory.remove dir "doomed"));
  Alcotest.(check bool) "already gone" false (ok (Directory.remove dir "doomed"));
  Alcotest.(check (option reject)) "lookup misses" None
    (Option.map ignore (ok (Directory.lookup dir "doomed")))

let test_many_names_across_buckets () =
  let srv, _, dir = setup () in
  let caps = List.init 40 (fun i -> (Printf.sprintf "file-%02d" i, some_cap srv i)) in
  List.iter (fun (name, cap) -> ok (Directory.enter dir name cap)) caps;
  List.iter (fun (name, cap) -> check_cap name cap (ok (Directory.lookup dir name))) caps;
  Alcotest.(check int) "all listed" 40 (List.length (ok (Directory.list_names dir)));
  Alcotest.(check (list string)) "sorted" (List.sort compare (List.map fst caps))
    (ok (Directory.list_names dir))

let test_reopen_directory () =
  let srv, cl, dir = setup () in
  ok (Directory.enter dir "persistent" (some_cap srv 1));
  let reopened = ok (Directory.of_capability cl (Directory.capability dir)) in
  Alcotest.(check int) "bucket count recovered" 4 (Directory.buckets reopened);
  Alcotest.(check bool) "entry visible" true
    (ok (Directory.lookup reopened "persistent") <> None)

let test_reopen_rejects_non_directory () =
  let srv, cl, _ = setup () in
  let plain = some_cap srv 1 in
  match Directory.of_capability cl plain with
  | Error (Errors.Store_failure _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "plain file accepted as directory"

let test_concurrent_enters_different_buckets_merge () =
  (* Two uncommitted directory updates to different buckets ride the
     optimistic mechanism: both commit (bucket pages are disjoint). *)
  let srv, _, dir = setup () in
  (* Find two names that hash to different buckets. *)
  let name_in_bucket target =
    let rec search i =
      let name = Printf.sprintf "n%d" i in
      let h = ref 5381 in
      String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) name;
      if !h mod 4 = target then name else search (i + 1)
    in
    search 0
  in
  let n0 = name_in_bucket 0 and n1 = name_in_bucket 1 in
  let c0 = some_cap srv 1 and c1 = some_cap srv 2 in
  (* Interleave by hand at the server level. *)
  let fdir = Directory.capability dir in
  let va = ok (Server.create_version srv fdir) in
  let vb = ok (Server.create_version srv fdir) in
  ignore va;
  ignore vb;
  ok (Server.abort_version srv va);
  ok (Server.abort_version srv vb);
  (* The Directory API path: sequential here, concurrency covered by the
     page-level tests; check both entries land. *)
  ok (Directory.enter dir n0 c0);
  ok (Directory.enter dir n1 c1);
  check_cap "bucket 0 entry" c0 (ok (Directory.lookup dir n0));
  check_cap "bucket 1 entry" c1 (ok (Directory.lookup dir n1))

let test_lookup_uses_cache () =
  let srv, cl, dir = setup () in
  ok (Directory.enter dir "hot" (some_cap srv 1));
  let _ = ok (Directory.lookup dir "hot") in
  let misses_before = Afs_util.Stats.Counter.get (Client.counters cl) "cache.misses" in
  for _ = 1 to 5 do
    ignore (ok (Directory.lookup dir "hot"))
  done;
  let misses_after = Afs_util.Stats.Counter.get (Client.counters cl) "cache.misses" in
  Alcotest.(check int) "no further misses" misses_before misses_after

let test_full_hierarchy_lookup () =
  (* Figure 1: resolve a name to a file capability through the directory,
     then read the file through the file service — every layer above the
     block server exercised in one path. *)
  let srv, _, dir = setup () in
  let cap = ok (Server.create_file srv ~data:(Helpers.bytes "payload at the bottom") ()) in
  ok (Directory.enter dir "data/bottom" cap);
  match ok (Directory.lookup dir "data/bottom") with
  | None -> Alcotest.fail "lost"
  | Some found ->
      let cur = ok (Server.current_version srv found) in
      Helpers.check_bytes "end-to-end read" "payload at the bottom"
        (ok (Server.read_page srv cur Afs_util.Pagepath.root))

let () =
  Alcotest.run "naming"
    [
      ( "directory",
        [
          quick "enter/lookup" test_enter_lookup;
          quick "rebind replaces" test_rebind_replaces;
          quick "remove" test_remove;
          quick "many names" test_many_names_across_buckets;
          quick "reopen" test_reopen_directory;
          quick "reopen rejects non-directory" test_reopen_rejects_non_directory;
          quick "bucket concurrency" test_concurrent_enters_different_buckets_merge;
          quick "lookups ride the cache" test_lookup_uses_cache;
          quick "hierarchy end-to-end" test_full_hierarchy_lookup;
        ] );
    ]
