(* Serialise.diff_trees: history diffs in time proportional to change,
   riding the differential representation. *)

open Afs_core
module P = Afs_util.Pagepath

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok
let path = Helpers.path

let diff srv a b =
  ok (Serialise.diff_trees (Server.pagestore srv) ~old_version:a ~new_version:b)

let show (p, change) =
  Printf.sprintf "%s:%s" (P.to_string p)
    (match change with Serialise.Data_changed -> "data" | Serialise.Structure_changed -> "shape")

let commit_write srv f p s =
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path p) (bytes s));
  ok (Server.commit srv v);
  ok (Server.version_block srv v)

let chain_blocks srv f = ok (Server.committed_chain srv f)

let test_identical_versions_empty_diff () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let cur = ok (Server.current_block_of_file srv f) in
  Alcotest.(check (list string)) "self diff empty" []
    (List.map show (diff srv cur cur))

let test_single_page_edit () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let before = ok (Server.current_block_of_file srv f) in
  let after = commit_write srv f [ 2 ] "changed" in
  Alcotest.(check (list string)) "one page" [ "/2:data" ] (List.map show (diff srv before after))

let test_root_data_edit () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let before = ok (Server.current_block_of_file srv f) in
  let after = commit_write srv f [] "new root" in
  Alcotest.(check (list string)) "root" [ "/:data" ] (List.map show (diff srv before after))

let test_structure_change_reported () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let before = ok (Server.current_block_of_file srv f) in
  let v = ok (Server.create_version srv f) in
  ignore (ok (Server.insert_page srv v ~parent:P.root ~index:2 ~data:(bytes "extra") ()));
  ok (Server.commit srv v);
  let after = ok (Server.current_block_of_file srv f) in
  Alcotest.(check (list string)) "shape change" [ "/:shape" ]
    (List.map show (diff srv before after))

let test_diff_across_multiple_commits () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let before = ok (Server.current_block_of_file srv f) in
  ignore (commit_write srv f [ 0 ] "a");
  ignore (commit_write srv f [ 3 ] "b");
  ignore (commit_write srv f [ 0 ] "c");
  let after = ok (Server.current_block_of_file srv f) in
  Alcotest.(check (list string)) "accumulated" [ "/0:data"; "/3:data" ]
    (List.map show (diff srv before after))

let test_diff_is_directionless_set () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let before = ok (Server.current_block_of_file srv f) in
  let after = commit_write srv f [ 1 ] "x" in
  let fwd = List.map show (diff srv before after) in
  let bwd = List.map show (diff srv after before) in
  Alcotest.(check (list string)) "same pages either way" fwd bwd

let test_diff_cost_skips_shared_subtrees () =
  (* A deep tree with one leaf edited: the diff must read only the spine,
     not the whole tree. *)
  let store, io = Store.counting (Store.memory ()) in
  let srv = Server.create store in
  ignore store;
  let f = ok (Server.create_file srv ()) in
  let v = ok (Server.create_version srv f) in
  let rec build parent depth =
    for i = 0 to 3 do
      let child =
        ok (Server.insert_page srv v ~parent ~index:i ~data:(bytes "node") ())
      in
      if depth < 3 then build child (depth + 1)
    done
  in
  build P.root 1;
  ok (Server.commit srv v);
  let before = ok (Server.current_block_of_file srv f) in
  let v2 = ok (Server.create_version srv f) in
  ok (Server.write_page srv v2 (path [ 0; 0; 0 ]) (bytes "edited leaf"));
  ok (Server.commit srv v2);
  let after = ok (Server.current_block_of_file srv f) in
  ok (Pagestore.flush (Server.pagestore srv));
  Pagestore.drop_volatile (Server.pagestore srv);
  let r0, _ = io () in
  let changes = diff srv before after in
  let r1, _ = io () in
  Alcotest.(check (list string)) "one leaf" [ "/0.0.0:data" ] (List.map show changes);
  (* The tree has 1 + 4 + 16 + 64 = 85 pages; the diff reads only the two
     spines (2 pages per level). *)
  Alcotest.(check bool)
    (Printf.sprintf "%d reads for an 85-page tree" (r1 - r0))
    true
    (r1 - r0 <= 8)

let test_diff_between_arbitrary_chain_points () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  ignore (commit_write srv f [ 0 ] "r1");
  ignore (commit_write srv f [ 1 ] "r2");
  ignore (commit_write srv f [ 2 ] "r3");
  match chain_blocks srv f with
  | [ _; _; r1; r2; r3 ] ->
      Alcotest.(check (list string)) "r1 vs r2" [ "/1:data" ]
        (List.map show (diff srv r1 r2));
      Alcotest.(check (list string)) "r1 vs r3" [ "/1:data"; "/2:data" ]
        (List.map show (diff srv r1 r3));
      Alcotest.(check (list string)) "r2 vs r3" [ "/2:data" ]
        (List.map show (diff srv r2 r3))
  | l -> Alcotest.failf "unexpected chain length %d" (List.length l)

let () =
  Alcotest.run "diff"
    [
      ( "diff_trees",
        [
          quick "identical versions" test_identical_versions_empty_diff;
          quick "single page edit" test_single_page_edit;
          quick "root data edit" test_root_data_edit;
          quick "structure change" test_structure_change_reported;
          quick "across multiple commits" test_diff_across_multiple_commits;
          quick "directionless" test_diff_is_directionless_set;
          quick "skips shared subtrees" test_diff_cost_skips_shared_subtrees;
          quick "arbitrary chain points" test_diff_between_arbitrary_chain_points;
        ] );
    ]
