open Afs_core
module Capability = Afs_util.Capability
module P = Afs_util.Pagepath

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok
let path = Helpers.path

(* {2 File lifecycle} *)

let test_create_file_initial_state () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ~data:(bytes "genesis") ()) in
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "initial data" "genesis" (ok (Server.read_page srv cur P.root));
  Alcotest.(check int) "one committed version" 1
    (List.length (ok (Server.committed_chain srv f)));
  Alcotest.(check (list int)) "no uncommitted" [] (ok (Server.uncommitted_versions srv f))

let test_multiple_files_independent () =
  let _, srv = Helpers.fresh_server () in
  let f1 = ok (Server.create_file srv ~data:(bytes "one") ()) in
  let f2 = ok (Server.create_file srv ~data:(bytes "two") ()) in
  Alcotest.(check bool) "distinct caps" false (Capability.equal f1 f2);
  let c1 = ok (Server.current_version srv f1) in
  let c2 = ok (Server.current_version srv f2) in
  Helpers.check_bytes "f1" "one" (ok (Server.read_page srv c1 P.root));
  Helpers.check_bytes "f2" "two" (ok (Server.read_page srv c2 P.root))

let test_invalid_capability_rejected () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ()) in
  let forged = { f with Capability.obj = f.Capability.obj + 2 } in
  (match Server.current_version srv forged with
  | Error Errors.Invalid_capability -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "forged capability accepted");
  (* A capability from a server with a different secret is also rejected. *)
  let _, other = Helpers.fresh_server ~seed:9999 () in
  let foreign = ok (Server.create_file other ()) in
  match Server.current_version srv foreign with
  | Error Errors.Invalid_capability -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "foreign capability accepted"

let test_version_cap_not_file_cap () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ()) in
  let v = ok (Server.create_version srv f) in
  (match Server.create_version srv v with
  | Error Errors.Invalid_capability -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "version capability accepted as file");
  match Server.read_page srv f P.root with
  | Error Errors.Invalid_capability -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "file capability accepted as version"

let test_destroy_file () =
  let store, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let keeper = Helpers.file_with_pages srv 2 in
  (* Leave an in-flight update on the doomed file. *)
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "in flight"));
  ok (Server.destroy_file srv f);
  (match Server.current_version srv f with
  | Error (Errors.No_such_file _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ ->
      (* Lazy learning may resurrect it from storage; the GC is the real
         arbiter of deletion. Accept either until after the sweep. *)
      ());
  (* After a GC sweep, the blocks are gone and the keeper survives. *)
  let before = List.length (Helpers.ok_str (store.Store.list_blocks ())) in
  ignore (ok (Gc.collect ~policy:{ Gc.retain_committed = 16; reshare = false } srv));
  let after = List.length (Helpers.ok_str (store.Store.list_blocks ())) in
  Alcotest.(check bool) "space reclaimed" true (after < before);
  let cur = ok (Server.current_version srv keeper) in
  Helpers.check_bytes "other file intact" "p1" (ok (Server.read_page srv cur (path [ 1 ])))

let test_destroy_requires_right () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 1 in
  (* A capability restricted to read rights cannot destroy. *)
  let secret = Afs_util.Capability.secret_of_seed 7 in
  match Afs_util.Capability.restrict secret f Afs_util.Capability.right_read with
  | Error msg -> Alcotest.fail msg
  | Ok weak -> (
      match Server.destroy_file srv weak with
      | Error Errors.Invalid_capability -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
      | Ok () -> Alcotest.fail "destroy allowed without the destroy right")

(* {2 Rights enforcement} *)

let test_read_only_version_cap_cannot_write () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let cur = ok (Server.current_version srv f) in
  (* current_version hands out read rights only. *)
  match Server.write_page srv cur (path [ 0 ]) (bytes "sneaky") with
  | Error (Errors.Invalid_capability | Errors.Version_not_mutable) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok () -> Alcotest.fail "write allowed through a read-only capability"

let test_restricted_file_cap_cannot_update () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let secret = Afs_util.Capability.secret_of_seed 7 in
  match Afs_util.Capability.restrict secret f Afs_util.Capability.right_read with
  | Error msg -> Alcotest.fail msg
  | Ok read_only -> (
      (match Server.create_version srv read_only with
      | Error Errors.Invalid_capability -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
      | Ok _ -> Alcotest.fail "version creation allowed without write right");
      (* But reading the current version is fine. *)
      let cur = ok (Server.current_version srv read_only) in
      Helpers.check_bytes "read allowed" "p0" (ok (Server.read_page srv cur (path [ 0 ]))))

(* {2 Version lifecycle} *)

let test_version_sees_base_content () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let v = ok (Server.create_version srv f) in
  Helpers.check_bytes "root" "root" (ok (Server.read_page srv v P.root));
  Helpers.check_bytes "page 1" "p1" (ok (Server.read_page srv v (path [ 1 ])))

let test_uncommitted_invisible_to_current () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "draft"));
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "current unchanged" "p0" (ok (Server.read_page srv cur (path [ 0 ])));
  ok (Server.commit srv v);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "visible after commit" "draft"
    (ok (Server.read_page srv cur (path [ 0 ])))

let test_two_versions_isolated () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let va = ok (Server.create_version srv f) in
  let vb = ok (Server.create_version srv f) in
  ok (Server.write_page srv va (path [ 0 ]) (bytes "from-a"));
  Helpers.check_bytes "b sees base" "p0" (ok (Server.read_page srv vb (path [ 0 ])));
  Helpers.check_bytes "a sees own write" "from-a" (ok (Server.read_page srv va (path [ 0 ])))

let test_abort_version () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "discard me"));
  ok (Server.abort_version srv v);
  Alcotest.(check bool) "status aborted" true (ok (Server.version_status srv v) = Server.Aborted);
  (match Server.write_page srv v (path [ 0 ]) (bytes "zombie") with
  | Error Errors.Version_not_mutable -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "write to aborted version accepted");
  Alcotest.(check (list int)) "not in uncommitted list" []
    (ok (Server.uncommitted_versions srv f))

let test_committed_version_immutable () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 1 in
  let v = ok (Server.create_version srv f) in
  ok (Server.commit srv v);
  (match Server.write_page srv v (path [ 0 ]) (bytes "nope") with
  | Error Errors.Version_not_mutable -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "write to committed version accepted");
  match Server.commit srv v with
  | Error Errors.Version_not_mutable -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "double commit accepted"

let test_chain_grows () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ()) in
  for i = 1 to 5 do
    let v = ok (Server.create_version srv f) in
    ok (Server.write_page srv v P.root (bytes (string_of_int i)));
    ok (Server.commit srv v)
  done;
  let chain = ok (Server.committed_chain srv f) in
  Alcotest.(check int) "six versions" 6 (List.length chain);
  (* Chain is oldest-first and ends at the current version. *)
  let current = ok (Server.current_block_of_file srv f) in
  Alcotest.(check int) "last is current" current (List.nth chain 5)

let test_old_versions_still_readable () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ~data:(bytes "v0") ()) in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v P.root (bytes "v1"));
  ok (Server.commit srv v);
  match ok (Server.committed_chain srv f) with
  | [ old_block; _ ] ->
      let old_cap = ok (Server.version_of_block srv old_block) in
      Helpers.check_bytes "past state preserved" "v0" (ok (Server.read_page srv old_cap P.root))
  | l -> Alcotest.failf "expected 2 versions, got %d" (List.length l)

(* {2 Page operations} *)

let test_insert_and_read_pages () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ()) in
  let v = ok (Server.create_version srv f) in
  let p0 = ok (Server.insert_page srv v ~parent:P.root ~index:0 ~data:(bytes "a") ()) in
  Alcotest.(check string) "returned path" "/0" (P.to_string p0);
  let _ = ok (Server.insert_page srv v ~parent:p0 ~index:0 ~data:(bytes "nested") ()) in
  Helpers.check_bytes "nested read" "nested" (ok (Server.read_page srv v (path [ 0; 0 ])));
  let info = ok (Server.page_info srv v p0) in
  Alcotest.(check int) "child count" 1 info.Server.nrefs

let test_insert_shifts_indices () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Server.create_version srv f) in
  let _ = ok (Server.insert_page srv v ~parent:P.root ~index:0 ~data:(bytes "new") ()) in
  Helpers.check_bytes "new at 0" "new" (ok (Server.read_page srv v (path [ 0 ])));
  Helpers.check_bytes "old p0 shifted" "p0" (ok (Server.read_page srv v (path [ 1 ])));
  Helpers.check_bytes "old p1 shifted" "p1" (ok (Server.read_page srv v (path [ 2 ])))

let test_remove_page () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let v = ok (Server.create_version srv f) in
  ok (Server.remove_page srv v ~parent:P.root ~index:1);
  Helpers.check_bytes "p2 shifted down" "p2" (ok (Server.read_page srv v (path [ 1 ])));
  let info = ok (Server.page_info srv v P.root) in
  Alcotest.(check int) "two left" 2 info.Server.nrefs

let test_move_page () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let v = ok (Server.create_version srv f) in
  (* Move p0 under p2. *)
  ok (Server.move_page srv v ~src_parent:P.root ~src_index:0 ~dst_parent:(path [ 1 ])
        ~dst_index:0);
  (* After removal of index 0, the old p2 is at index 1. *)
  Helpers.check_bytes "moved subtree readable" "p0"
    (ok (Server.read_page srv v (path [ 1; 0 ])));
  let info = ok (Server.page_info srv v P.root) in
  Alcotest.(check int) "root has two children" 2 info.Server.nrefs

let test_move_into_own_subtree_rejected () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Server.create_version srv f) in
  match
    Server.move_page srv v ~src_parent:P.root ~src_index:0 ~dst_parent:(path [ 0 ])
      ~dst_index:0
  with
  | Error (Errors.Bad_path _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "cycle-creating move accepted"

let test_split_page () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ()) in
  let v = ok (Server.create_version srv f) in
  let child = ok (Server.insert_page srv v ~parent:P.root ~index:0 ~data:(bytes "node") ()) in
  for j = 0 to 5 do
    ignore
      (ok
         (Server.insert_page srv v ~parent:child ~index:j
            ~data:(bytes (Printf.sprintf "g%d" j)) ()))
  done;
  let sibling = ok (Server.split_page srv v ~path:child ~at:4) in
  Alcotest.(check string) "sibling path" "/1" (P.to_string sibling);
  let left = ok (Server.page_info srv v child) in
  let right = ok (Server.page_info srv v sibling) in
  Alcotest.(check int) "left keeps 4" 4 left.Server.nrefs;
  Alcotest.(check int) "right takes 2" 2 right.Server.nrefs;
  (* The moved subtrees are intact under the sibling. *)
  Helpers.check_bytes "g4 moved" "g4" (ok (Server.read_page srv v (path [ 1; 0 ])));
  Helpers.check_bytes "g5 moved" "g5" (ok (Server.read_page srv v (path [ 1; 1 ])));
  Helpers.check_bytes "g0 kept" "g0" (ok (Server.read_page srv v (path [ 0; 0 ])));
  ok (Server.commit srv v);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "split survives commit" "g5" (ok (Server.read_page srv cur (path [ 1; 1 ])))

let test_split_page_errors () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Server.create_version srv f) in
  (match Server.split_page srv v ~path:P.root ~at:0 with
  | Error (Errors.Bad_path _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "split of root accepted");
  match Server.split_page srv v ~path:(path [ 0 ]) ~at:5 with
  | Error (Errors.Bad_index _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "out-of-range split accepted"

let test_bad_path_errors () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Server.create_version srv f) in
  (match Server.read_page srv v (path [ 7 ]) with
  | Error (Errors.Bad_index { index = 7; nrefs = 2; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "out-of-range read accepted");
  match Server.insert_page srv v ~parent:P.root ~index:5 () with
  | Error (Errors.Bad_index _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "out-of-range insert accepted"

let test_write_root_data () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ~data:(bytes "old root") ()) in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v P.root (bytes "new root"));
  ok (Server.commit srv v);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "root data" "new root" (ok (Server.read_page srv cur P.root))

let test_page_too_large_rejected () =
  let store = Store.memory ~block_size:512 () in
  let srv = Server.create store in
  let f = ok (Server.create_file srv ()) in
  let v = ok (Server.create_version srv f) in
  match Server.write_page srv v P.root (Bytes.make 600 'x') with
  | Error (Errors.Page_too_large _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "oversized page accepted"

(* {2 Flag recording (§5.1)} *)

let root_flags srv f v =
  ignore f;
  let vb = ok (Server.version_block srv v) in
  ok (Server.root_flags_of srv vb)

let child_flags srv v =
  let info = ok (Server.page_info srv v P.root) in
  info.Server.child_flags

let test_read_sets_r_and_path_s () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Server.create_version srv f) in
  let _ = ok (Server.read_page srv v (path [ 1 ])) in
  let rf = root_flags srv f v in
  Alcotest.(check bool) "root searched" true rf.Flags.s;
  Alcotest.(check bool) "root data not read" false rf.Flags.r;
  let cf = child_flags srv v in
  Alcotest.(check bool) "page1 read" true cf.(1).Flags.r;
  Alcotest.(check bool) "page1 copied" true cf.(1).Flags.c;
  Alcotest.(check bool) "page1 not written" false cf.(1).Flags.w;
  Alcotest.(check bool) "page0 untouched" true (Flags.equal Flags.clear cf.(0))

let test_write_sets_w_not_r () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "blind write"));
  let cf = child_flags srv v in
  Alcotest.(check bool) "w" true cf.(0).Flags.w;
  Alcotest.(check bool) "r independent of w" false cf.(0).Flags.r

let test_modify_sets_m_and_s () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 1 in
  let v = ok (Server.create_version srv f) in
  let _ = ok (Server.insert_page srv v ~parent:P.root ~index:1 ()) in
  let rf = root_flags srv f v in
  Alcotest.(check bool) "m" true rf.Flags.m;
  Alcotest.(check bool) "m implies s" true rf.Flags.s

let test_root_write_sets_root_r_w () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ()) in
  let v = ok (Server.create_version srv f) in
  let _ = ok (Server.read_page srv v P.root) in
  ok (Server.write_page srv v P.root (bytes "x"));
  let rf = root_flags srv f v in
  Alcotest.(check bool) "r" true rf.Flags.r;
  Alcotest.(check bool) "w" true rf.Flags.w

let test_copy_on_write_shares_untouched () =
  let store, srv = Helpers.fresh_server () in
  ignore store;
  let f = Helpers.file_with_pages srv 8 in
  let before = Afs_util.Stats.Counter.get (Server.counters srv) "pages.copied" in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 3 ]) (bytes "only this"));
  let after = Afs_util.Stats.Counter.get (Server.counters srv) "pages.copied" in
  (* Only the written page is copied (the root is rewritten in place). *)
  Alcotest.(check int) "one page copied" 1 (after - before)

let test_repeated_write_copies_once () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Server.create_version srv f) in
  let before = Afs_util.Stats.Counter.get (Server.counters srv) "pages.copied" in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "w1"));
  ok (Server.write_page srv v (path [ 0 ]) (bytes "w2"));
  let _ = ok (Server.read_page srv v (path [ 0 ])) in
  let after = Afs_util.Stats.Counter.get (Server.counters srv) "pages.copied" in
  Alcotest.(check int) "copied exactly once" 1 (after - before);
  Helpers.check_bytes "latest write" "w2" (ok (Server.read_page srv v (path [ 0 ])))

let test_base_version_flags_untouched () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  (* The base (current) version's own flag state must be unaffected by a
     new version's accesses — shared pages carry the flags in the parent,
     which is private to the new version. *)
  let cur = ok (Server.current_version srv f) in
  let before = (ok (Server.page_info srv cur P.root)).Server.child_flags in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "x"));
  let _ = ok (Server.read_page srv v (path [ 1 ])) in
  let after = (ok (Server.page_info srv cur P.root)).Server.child_flags in
  Alcotest.(check bool) "base child flags unchanged" true
    (Array.for_all2 Flags.equal before after)

let () =
  Alcotest.run "server"
    [
      ( "files",
        [
          quick "create file initial state" test_create_file_initial_state;
          quick "files independent" test_multiple_files_independent;
          quick "invalid capability rejected" test_invalid_capability_rejected;
          quick "cap kinds distinguished" test_version_cap_not_file_cap;
          quick "destroy file" test_destroy_file;
          quick "destroy requires right" test_destroy_requires_right;
        ] );
      ( "rights",
        [
          quick "read-only version cap" test_read_only_version_cap_cannot_write;
          quick "restricted file cap" test_restricted_file_cap_cannot_update;
        ] );
      ( "versions",
        [
          quick "version sees base content" test_version_sees_base_content;
          quick "uncommitted invisible" test_uncommitted_invisible_to_current;
          quick "versions isolated" test_two_versions_isolated;
          quick "abort" test_abort_version;
          quick "committed immutable" test_committed_version_immutable;
          quick "chain grows" test_chain_grows;
          quick "old versions readable" test_old_versions_still_readable;
        ] );
      ( "pages",
        [
          quick "insert and read" test_insert_and_read_pages;
          quick "insert shifts indices" test_insert_shifts_indices;
          quick "remove" test_remove_page;
          quick "move" test_move_page;
          quick "move cycle rejected" test_move_into_own_subtree_rejected;
          quick "split" test_split_page;
          quick "split errors" test_split_page_errors;
          quick "bad path errors" test_bad_path_errors;
          quick "root data write" test_write_root_data;
          quick "page too large" test_page_too_large_rejected;
        ] );
      ( "flags",
        [
          quick "read sets R and S on path" test_read_sets_r_and_path_s;
          quick "write sets W not R" test_write_sets_w_not_r;
          quick "modify sets M and S" test_modify_sets_m_and_s;
          quick "root R/W" test_root_write_sets_root_r_w;
          quick "copy-on-write shares untouched" test_copy_on_write_shares_untouched;
          quick "repeated write copies once" test_repeated_write_copies_once;
          quick "base flags untouched" test_base_version_flags_untouched;
        ] );
    ]
