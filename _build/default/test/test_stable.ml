open Afs_stable
module S = Stable_pair
module Disk = Afs_disk.Disk

let quick = Helpers.quick
let bytes = Helpers.bytes

let fresh ?(blocks = 64) ?(block_size = 512) ?(seed = 1) () =
  S.create ~seed ~blocks ~block_size ()

let ok (o : 'a S.outcome) =
  match o.S.result with
  | Ok v -> v
  | Error e -> Alcotest.failf "stable error: %s" (Fmt.str "%a" S.pp_error e)

let expect name pred (o : 'a S.outcome) =
  match o.S.result with
  | Ok _ -> Alcotest.failf "%s: expected error" name
  | Error e -> Alcotest.(check bool) name true (pred e)

let check_invariant t =
  match S.verify_companion_invariant t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* {2 Basic duplexed storage} *)

let test_allocate_write_read () =
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "duplexed")) in
  Helpers.check_bytes "read via 0" "duplexed" (ok (S.read t 0 b));
  Helpers.check_bytes "read via 1" "duplexed" (ok (S.read t 1 b));
  check_invariant t

let test_both_disks_hold_copy () =
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "x")) in
  Alcotest.(check bool) "disk 0 has it" true (Disk.is_written (S.disk t 0) b);
  Alcotest.(check bool) "disk 1 has it" true (Disk.is_written (S.disk t 1) b)

let test_update_via_either_server () =
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "v1")) in
  ignore (ok (S.write t 1 b (bytes "v2")));
  Helpers.check_bytes "updated" "v2" (ok (S.read t 0 b));
  check_invariant t

let test_free () =
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "gone soon")) in
  ignore (ok (S.free t 0 b));
  expect "read freed" (function S.Not_allocated _ -> true | _ -> false) (S.read t 0 b);
  expect "read freed via companion" (function S.Not_allocated _ -> true | _ -> false)
    (S.read t 1 b)

let test_read_unallocated () =
  let t = fresh () in
  expect "unallocated" (function S.Not_allocated 3 -> true | _ -> false) (S.read t 0 3)

(* {2 Corruption repair} *)

let test_corruption_repaired_from_companion () =
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "precious")) in
  Alcotest.(check bool) "corrupted" true (Disk.corrupt (S.disk t 0) b ~xor_byte:'\xFF');
  Helpers.check_bytes "repaired read" "precious" (ok (S.read t 0 b));
  (* The local copy was repaired in passing. *)
  Helpers.check_bytes "second read clean" "precious" (ok (S.read t 0 b));
  check_invariant t

let test_corrupt_both_detected () =
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "doomed")) in
  ignore (Disk.corrupt (S.disk t 0) b ~xor_byte:'\xFF');
  ignore (Disk.corrupt (S.disk t 1) b ~xor_byte:'\xFF');
  expect "both corrupt" (function S.Corrupt_both _ -> true | _ -> false) (S.read t 0 b)

(* {2 Allocate collisions} *)

let test_interleaved_allocate_collision () =
  (* Drive the protocol steps by hand: both servers tentatively choose the
     same block, then shadow-write; the companion detects the collision
     before any primary copy is damaged. *)
  let t = fresh ~blocks:1 () in
  let b0 = ok (S.tentative_allocate t 0) in
  let b1 = ok (S.tentative_allocate t 1) in
  Alcotest.(check int) "same block chosen" b0 b1;
  (* Server 0's shadow write arrives at server 1, which holds a tentative
     claim on the same block: collision. *)
  expect "collision detected" (function S.Collision _ -> true | _ -> false)
    (S.shadow_write t ~primary:0 ~fresh:true b0 (bytes "from-0"));
  S.abort_tentative t 0 b0;
  (* Server 1 now completes unhindered. *)
  let seq = ok (S.shadow_write t ~primary:1 ~fresh:true b1 (bytes "from-1")) in
  ignore (ok (S.local_write_seq t 1 b1 (bytes "from-1") seq));
  Helpers.check_bytes "winner's data" "from-1" (ok (S.read t 1 b1));
  check_invariant t

let test_allocate_write_retries_internally () =
  (* With a single-block address space and a pre-claimed tentative slot at
     the companion, allocate_write must retry and eventually give up. *)
  let t = fresh ~blocks:1 () in
  let b = ok (S.tentative_allocate t 1) in
  expect "exhausts retries" (function S.No_free_blocks -> true | _ -> false)
    (S.allocate_write t 0 (bytes "loser"));
  S.abort_tentative t 1 b;
  let b2 = ok (S.allocate_write t 0 (bytes "winner")) in
  Helpers.check_bytes "eventually lands" "winner" (ok (S.read t 0 b2))

(* {2 Crashes} *)

let test_write_with_companion_down () =
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "v1")) in
  S.crash t 1;
  ignore (ok (S.write t 0 b (bytes "v2-solo")));
  Helpers.check_bytes "local serves" "v2-solo" (ok (S.read t 0 b));
  (* Companion comes back and compares notes. *)
  let repaired = ok (S.restart t 1) in
  Alcotest.(check bool) "repaired blocks" true (repaired >= 1);
  Helpers.check_bytes "companion caught up" "v2-solo" (ok (S.read t 1 b));
  check_invariant t

let test_crashed_server_refuses () =
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "x")) in
  S.crash t 0;
  expect "crashed refuses" (function S.Unavailable 0 -> true | _ -> false) (S.read t 0 b);
  Alcotest.(check (option int)) "other online" (Some 1) (S.some_online t)

let test_full_disk_loss_recovery () =
  let t = fresh () in
  let blocks = List.init 10 (fun i -> ok (S.allocate_write t 0 (bytes (Printf.sprintf "block-%d" i)))) in
  S.wipe_and_crash t 0;
  let repaired = ok (S.restart t 0) in
  Alcotest.(check int) "all blocks repaired" 10 repaired;
  List.iteri
    (fun i b ->
      Helpers.check_bytes (Printf.sprintf "block %d" i) (Printf.sprintf "block-%d" i)
        (ok (S.read t 0 b)))
    blocks;
  check_invariant t

let test_both_down_then_lone_restart () =
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "survivor")) in
  S.crash t 0;
  S.crash t 1;
  Alcotest.(check (option int)) "none online" None (S.some_online t);
  ignore (ok (S.restart t 0));
  Helpers.check_bytes "lone server serves own disk" "survivor" (ok (S.read t 0 b))

let test_crash_between_shadow_and_local () =
  (* The §4 ordering: companion first, then local. Crash the primary in
     between: the companion has the newer copy and recovery propagates. *)
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "v1")) in
  let seq = ok (S.shadow_write t ~primary:0 ~fresh:false b (bytes "v2")) in
  (* Primary dies before its local write. *)
  ignore seq;
  S.crash t 0;
  Helpers.check_bytes "companion already has v2" "v2" (ok (S.read t 1 b));
  let _ = ok (S.restart t 0) in
  Helpers.check_bytes "recovered primary has v2" "v2" (ok (S.read t 0 b));
  check_invariant t

let test_intention_list_discharged () =
  let t = fresh () in
  let b1 = ok (S.allocate_write t 0 (bytes "a1")) in
  S.crash t 1;
  ignore (ok (S.write t 0 b1 (bytes "a2")));
  let b2 = ok (S.allocate_write t 0 (bytes "fresh-during-outage")) in
  let repaired = ok (S.restart t 1) in
  Alcotest.(check bool) "two repairs" true (repaired >= 2);
  Helpers.check_bytes "update propagated" "a2" (ok (S.read t 1 b1));
  Helpers.check_bytes "new block propagated" "fresh-during-outage" (ok (S.read t 1 b2));
  check_invariant t

let test_seq_monotonic_across_restart () =
  let t = fresh () in
  let b = ok (S.allocate_write t 0 (bytes "v1")) in
  S.crash t 0;
  ignore (ok (S.write t 1 b (bytes "v2")));
  ignore (ok (S.restart t 0));
  ignore (ok (S.write t 0 b (bytes "v3")));
  Helpers.check_bytes "latest wins everywhere" "v3" (ok (S.read t 1 b));
  check_invariant t

let test_cost_reported () =
  let t = fresh () in
  let o = S.allocate_write t 0 (bytes "paid for") in
  Alcotest.(check bool) "cost positive" true (o.S.cost_ms > 0.0)

let () =
  Alcotest.run "stable_pair"
    [
      ( "duplex",
        [
          quick "allocate/write/read" test_allocate_write_read;
          quick "both disks hold copy" test_both_disks_hold_copy;
          quick "update via either server" test_update_via_either_server;
          quick "free" test_free;
          quick "read unallocated" test_read_unallocated;
        ] );
      ( "corruption",
        [
          quick "repair from companion" test_corruption_repaired_from_companion;
          quick "both corrupt detected" test_corrupt_both_detected;
        ] );
      ( "collisions",
        [
          quick "interleaved allocate collision" test_interleaved_allocate_collision;
          quick "allocate_write retries" test_allocate_write_retries_internally;
        ] );
      ( "crashes",
        [
          quick "write with companion down" test_write_with_companion_down;
          quick "crashed server refuses" test_crashed_server_refuses;
          quick "full disk loss recovery" test_full_disk_loss_recovery;
          quick "both down, lone restart" test_both_down_then_lone_restart;
          quick "crash between shadow and local" test_crash_between_shadow_and_local;
          quick "intentions discharged" test_intention_list_discharged;
          quick "sequence monotonic" test_seq_monotonic_across_restart;
          quick "cost reported" test_cost_reported;
        ] );
    ]
