open Afs_core
module P = Afs_util.Pagepath

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok
let path = Helpers.path

let counter cl name = Afs_util.Stats.Counter.get (Client.counters cl) name

let setup () =
  let _, srv = Helpers.fresh_server () in
  let cl = Client.connect srv in
  let f = Helpers.file_with_pages srv 4 in
  (srv, cl, f)

let test_update_commits () =
  let srv, cl, f = setup () in
  ok
    (Client.update cl f (fun txn ->
         Client.Txn.write txn (path [ 0 ]) (bytes "updated")));
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "landed" "updated" (ok (Server.read_page srv cur (path [ 0 ])));
  Alcotest.(check int) "one attempt" 1 (counter cl "txn.attempts");
  Alcotest.(check int) "committed" 1 (counter cl "txn.committed")

let test_update_returns_value () =
  let _, cl, f = setup () in
  let n =
    ok
      (Client.update cl f (fun txn ->
           let open Errors in
           let* data = Client.Txn.read txn (path [ 1 ]) in
           Ok (Bytes.length data)))
  in
  Alcotest.(check int) "value through" 2 n

let test_update_redoes_on_conflict () =
  let srv, cl, f = setup () in
  let interfered = ref false in
  ok
    (Client.update cl f (fun txn ->
         let open Errors in
         let* balance = Client.Txn.read txn (path [ 0 ]) in
         (* First attempt: an interfering writer sneaks in after our read
            and commits first. *)
         if not !interfered then begin
           interfered := true;
           let v = ok (Server.create_version srv f) in
           ok (Server.write_page srv v (path [ 0 ]) (bytes "interference"));
           ok (Server.commit srv v)
         end;
         Client.Txn.write txn (path [ 0 ]) (Bytes.cat balance (bytes "+suffix"))));
  Alcotest.(check int) "two attempts" 2 (counter cl "txn.attempts");
  Alcotest.(check int) "one redo" 1 (counter cl "txn.redone");
  let cur = ok (Server.current_version srv f) in
  (* The redo re-read the interfering value, so the suffix applies to it. *)
  Helpers.check_bytes "redo saw fresh value" "interference+suffix"
    (ok (Server.read_page srv cur (path [ 0 ])))

let test_update_gives_up_after_retries () =
  let srv, cl, f = setup () in
  let result =
    Client.update ~retries:3 cl f (fun txn ->
        let open Errors in
        let* _ = Client.Txn.read txn (path [ 0 ]) in
        (* Every attempt gets beaten by a fresh interfering commit. *)
        let v = ok (Server.create_version srv f) in
        ok (Server.write_page srv v (path [ 0 ]) (bytes "always first"));
        ok (Server.commit srv v);
        Client.Txn.write txn (path [ 0 ]) (bytes "never lands"))
  in
  (match result with
  | Error Errors.Conflict -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok () -> Alcotest.fail "should have given up");
  Alcotest.(check int) "three attempts" 3 (counter cl "txn.attempts")

let test_body_error_aborts_version () =
  let srv, cl, f = setup () in
  let result =
    Client.update cl f (fun txn ->
        let open Errors in
        let* () = Client.Txn.write txn (path [ 0 ]) (bytes "poisoned") in
        Error (Errors.Store_failure "application decided to bail"))
  in
  (match result with Error (Errors.Store_failure _) -> () | _ -> Alcotest.fail "error lost");
  Alcotest.(check (list int)) "no uncommitted versions left" []
    (ok (Server.uncommitted_versions srv f));
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "no partial effect" "p0" (ok (Server.read_page srv cur (path [ 0 ])))

let test_give_up_exception () =
  let _, cl, f = setup () in
  let result =
    Client.update cl f (fun _txn -> raise (Client.Give_up (Errors.Store_failure "manual")))
  in
  match result with
  | Error (Errors.Store_failure "manual") -> ()
  | _ -> Alcotest.fail "Give_up not propagated"

let test_txn_structure_ops () =
  let srv, cl, f = setup () in
  ok
    (Client.update cl f (fun txn ->
         let open Errors in
         let* p = Client.Txn.insert txn ~parent:P.root ~index:4 ~data:(bytes "appended") () in
         Alcotest.(check string) "path" "/4" (P.to_string p);
         Client.Txn.remove txn ~parent:P.root ~index:0));
  let cur = ok (Server.current_version srv f) in
  (* p0 removed, so the appended page slid to index 3. *)
  Helpers.check_bytes "appended present" "appended" (ok (Server.read_page srv cur (path [ 3 ])))

let test_read_current () =
  let _, cl, f = setup () in
  Helpers.check_bytes "read" "p2" (ok (Client.read_current cl f (path [ 2 ])))

let test_read_cached_hits () =
  let _, cl, f = setup () in
  let first = ok (Client.read_cached cl f (path [ 1 ])) in
  let second = ok (Client.read_cached cl f (path [ 1 ])) in
  Helpers.check_bytes "first" "p1" first;
  Helpers.check_bytes "second" "p1" second;
  Alcotest.(check int) "one miss" 1 (counter cl "cache.misses");
  Alcotest.(check int) "one hit" 1 (counter cl "cache.hits")

let test_read_cached_sees_fresh_commits () =
  let _, cl, f = setup () in
  let _ = ok (Client.read_cached cl f (path [ 1 ])) in
  ok (Client.update cl f (fun txn -> Client.Txn.write txn (path [ 1 ]) (bytes "renewed")));
  Helpers.check_bytes "fresh after validation" "renewed"
    (ok (Client.read_cached cl f (path [ 1 ])))

let test_client_without_cache () =
  let _, srv = Helpers.fresh_server () in
  let cl = Client.connect ~use_cache:false srv in
  let f = Helpers.file_with_pages srv 2 in
  Helpers.check_bytes "direct read" "p0" (ok (Client.read_cached cl f (path [ 0 ])));
  Alcotest.(check int) "no cache traffic" 0 (counter cl "cache.hits")

let test_write_whole_file_fast_path () =
  let srv, cl, _ = setup () in
  let f = ok (Client.create_file cl ~data:(bytes "small v1") ()) in
  ok (Client.write_whole_file cl f (bytes "small v2"));
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "whole-file write" "small v2" (ok (Server.read_page srv cur P.root));
  Alcotest.(check int) "two versions in chain" 2
    (List.length (ok (Server.committed_chain srv f)))

let test_concurrent_counter_increments_all_survive () =
  (* Interleaved read-increment-write updates through the redo loop: a
     lost update would show as a too-small final count. *)
  let srv, cl, _ = setup () in
  let f = ok (Client.create_file cl ~data:(bytes "0") ()) in
  ignore srv;
  let increment () =
    ok
      (Client.update cl f (fun txn ->
           let open Errors in
           let* v = Client.Txn.read txn P.root in
           let n = int_of_string (Helpers.str v) in
           Client.Txn.write txn P.root (bytes (string_of_int (n + 1)))))
  in
  for _ = 1 to 25 do
    increment ()
  done;
  Helpers.check_bytes "all increments kept" "25" (ok (Client.read_current cl f P.root))

let test_large_update_sets_hint () =
  let srv, cl, f = setup () in
  let observed = ref None in
  ok
    (Client.update ~large:true cl f (fun txn ->
         (* While the large update runs, a cooperating (hint-respecting)
            client is warded off... *)
         (match Server.create_version ~respect_hints:true srv f with
         | Error (Errors.Locked_out { port }) -> observed := Some port
         | Ok v -> ignore (Server.abort_version srv v)
         | Error _ -> ());
         Client.Txn.write txn (path [ 0 ]) (bytes "large")));
  (match !observed with
  | Some port -> Alcotest.(check bool) "hint port live during update" true (port > 0)
  | None -> Alcotest.fail "hint was not set");
  (* ...and after it finishes, the hint port is dead, so nobody blocks. *)
  match Server.create_version ~respect_hints:true srv f with
  | Ok v -> ok (Server.abort_version srv v)
  | Error e -> Alcotest.failf "stale hint still blocks: %s" (Errors.to_string e)

let test_large_update_released_on_failure () =
  let srv, cl, f = setup () in
  let result =
    Client.update ~large:true cl f (fun _txn -> Error (Errors.Store_failure "bail out"))
  in
  (match result with Error (Errors.Store_failure _) -> () | _ -> Alcotest.fail "error lost");
  match Server.create_version ~respect_hints:true srv f with
  | Ok v -> ok (Server.abort_version srv v)
  | Error e -> Alcotest.failf "hint leaked after failure: %s" (Errors.to_string e)

let () =
  Alcotest.run "client"
    [
      ( "updates",
        [
          quick "commit" test_update_commits;
          quick "returns value" test_update_returns_value;
          quick "redo on conflict" test_update_redoes_on_conflict;
          quick "gives up after retries" test_update_gives_up_after_retries;
          quick "body error aborts" test_body_error_aborts_version;
          quick "Give_up exception" test_give_up_exception;
          quick "structure ops" test_txn_structure_ops;
          quick "counter increments survive" test_concurrent_counter_increments_all_survive;
        ] );
      ( "reads",
        [
          quick "read current" test_read_current;
          quick "cached reads hit" test_read_cached_hits;
          quick "cache sees fresh commits" test_read_cached_sees_fresh_commits;
          quick "no-cache client" test_client_without_cache;
        ] );
      ( "fast path",
        [ quick "one-page whole-file write" test_write_whole_file_fast_path ] );
      ( "soft locks",
        [
          quick "large update sets hint" test_large_update_sets_hint;
          quick "hint released on failure" test_large_update_released_on_failure;
        ] );
    ]
