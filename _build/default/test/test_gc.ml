open Afs_core
module P = Afs_util.Pagepath

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok
let path = Helpers.path

let block_count store = List.length (Helpers.ok_str (store.Store.list_blocks ()))

let commit_write srv f p s =
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path p) (bytes s));
  ok (Server.commit srv v)

let test_collect_on_quiet_system_frees_nothing_live () =
  let store, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let before = block_count store in
  let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 10; reshare = false } srv) in
  Alcotest.(check int) "nothing freed" 0 stats.Gc.blocks_freed;
  Alcotest.(check int) "store unchanged" before (block_count store);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "data intact" "p2" (ok (Server.read_page srv cur (path [ 2 ])))

let test_prune_respects_retention () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ()) in
  for i = 1 to 9 do
    commit_write srv f [] (Printf.sprintf "v%d" i)
  done;
  Alcotest.(check int) "10 versions" 10 (List.length (ok (Server.committed_chain srv f)));
  let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 3; reshare = false } srv) in
  Alcotest.(check int) "7 pruned" 7 stats.Gc.versions_pruned;
  Alcotest.(check int) "3 retained" 3 (List.length (ok (Server.committed_chain srv f)));
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "current intact" "v9" (ok (Server.read_page srv cur P.root))

let test_pruned_blocks_are_freed () =
  let store, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ()) in
  for i = 1 to 9 do
    commit_write srv f [] (Printf.sprintf "v%d" i)
  done;
  let before = block_count store in
  let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 2; reshare = false } srv) in
  Alcotest.(check bool) "blocks freed" true (stats.Gc.blocks_freed > 0);
  Alcotest.(check bool) "store shrank" true (block_count store < before)

let test_shared_pages_survive_prune () =
  (* Old versions share pages with newer ones; pruning the old versions
     must not free pages the retained chain still references. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 6 in
  (* Touch only page 0 repeatedly: pages 1..5 stay shared across all
     versions, including the ones about to be pruned. *)
  for i = 1 to 6 do
    commit_write srv f [ 0 ] (Printf.sprintf "round%d" i)
  done;
  ignore (ok (Gc.collect ~policy:{ Gc.retain_committed = 1; reshare = false } srv));
  let cur = ok (Server.current_version srv f) in
  for p = 1 to 5 do
    Helpers.check_bytes
      (Printf.sprintf "shared page %d" p)
      (Printf.sprintf "p%d" p)
      (ok (Server.read_page srv cur (path [ p ])))
  done;
  Helpers.check_bytes "latest write" "round6" (ok (Server.read_page srv cur (path [ 0 ])))

let test_aborted_version_blocks_swept () =
  let store, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  (* Simulate a client crash mid-update: version created, pages copied,
     never committed, server then loses track of it (crash). *)
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "orphaned"));
  ok (Server.write_page srv v (path [ 1 ]) (bytes "orphaned"));
  ok (Pagestore.flush (Server.pagestore srv));
  Server.crash srv;
  let before = block_count store in
  let stats = ok (Gc.collect srv) in
  Alcotest.(check bool) "orphans freed" true (stats.Gc.blocks_freed >= 3);
  Alcotest.(check bool) "store shrank" true (block_count store < before);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "committed state untouched" "p0" (ok (Server.read_page srv cur (path [ 0 ])))

let test_uncommitted_versions_survive_gc () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "in flight"));
  let stats = ok (Gc.collect srv) in
  Alcotest.(check int) "nothing freed" 0 stats.Gc.blocks_freed;
  (* The in-flight update is unharmed and can still commit. *)
  ok (Server.commit srv v);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "landed" "in flight" (ok (Server.read_page srv cur (path [ 0 ])))

let test_reshare_read_only_copies () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  (* A read-modify-write of page 0 also read pages 1..3, creating read
     copies of them. *)
  let v = ok (Server.create_version srv f) in
  for p = 1 to 3 do
    ignore (ok (Server.read_page srv v (path [ p ])))
  done;
  ok (Server.write_page srv v (path [ 0 ]) (bytes "w"));
  ok (Server.commit srv v);
  let vb = ok (Server.version_block srv v) in
  let reshared = ok (Gc.reshare_version srv vb) in
  Alcotest.(check int) "three read copies reshared" 3 reshared;
  (* Data is unchanged after resharing. *)
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "write kept" "w" (ok (Server.read_page srv cur (path [ 0 ])));
  for p = 1 to 3 do
    Helpers.check_bytes
      (Printf.sprintf "page %d reshared content" p)
      (Printf.sprintf "p%d" p)
      (ok (Server.read_page srv cur (path [ p ])))
  done

let test_reshare_then_sweep_reclaims_space () =
  let store, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 8 in
  let v = ok (Server.create_version srv f) in
  for p = 0 to 7 do
    ignore (ok (Server.read_page srv v (path [ p ])))
  done;
  ok (Server.commit srv v);
  ok (Pagestore.flush (Server.pagestore srv));
  let before = block_count store in
  let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 16; reshare = true } srv) in
  Alcotest.(check int) "8 reshared" 8 stats.Gc.pages_reshared;
  Alcotest.(check bool) "8 copies swept" true (stats.Gc.blocks_freed >= 8);
  Alcotest.(check int) "space reclaimed" (before - stats.Gc.blocks_freed) (block_count store)

let test_reshare_keeps_written_subtrees () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 1 ]) (bytes "must stay"));
  ok (Server.commit srv v);
  let vb = ok (Server.version_block srv v) in
  let reshared = ok (Gc.reshare_version srv vb) in
  Alcotest.(check int) "nothing reshared" 0 reshared;
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "write intact" "must stay" (ok (Server.read_page srv cur (path [ 1 ])))

let test_gc_safety_never_frees_live () =
  (* Random workload, then GC; every block the mark phase reports live
     must still be readable, and all file contents must survive. *)
  let store, srv = Helpers.fresh_server () in
  let rng = Afs_util.Xrng.create 99 in
  let files = Array.init 3 (fun _ -> Helpers.file_with_pages srv 5) in
  let expected = Array.make_matrix 3 5 "" in
  for fi = 0 to 2 do
    for p = 0 to 4 do
      expected.(fi).(p) <- Printf.sprintf "p%d" p
    done
  done;
  for round = 1 to 30 do
    let fi = Afs_util.Xrng.int rng 3 in
    let p = Afs_util.Xrng.int rng 5 in
    let v = ok (Server.create_version srv files.(fi)) in
    (* Mix reads in to generate read copies. *)
    let rp = Afs_util.Xrng.int rng 5 in
    ignore (ok (Server.read_page srv v (path [ rp ])));
    let value = Printf.sprintf "r%d" round in
    ok (Server.write_page srv v (path [ p ]) (bytes value));
    ok (Server.commit srv v);
    expected.(fi).(p) <- value
  done;
  let live = ok (Gc.live_blocks srv) in
  ignore (ok (Gc.collect ~policy:{ Gc.retain_committed = 2; reshare = true } srv));
  let remaining = Helpers.ok_str (store.Store.list_blocks ()) in
  (* Everything the pre-collect mark called live for the retained window
     is either still allocated or was superseded by reshare/prune; the
     real safety check is that all current data is readable. *)
  ignore live;
  ignore remaining;
  for fi = 0 to 2 do
    let cur = ok (Server.current_version srv files.(fi)) in
    for p = 0 to 4 do
      Helpers.check_bytes
        (Printf.sprintf "file %d page %d" fi p)
        expected.(fi).(p)
        (ok (Server.read_page srv cur (path [ p ])))
    done
  done

let test_recovery_after_gc () =
  (* GC rewrites base references when pruning; recovery from raw blocks
     must still find the chain root. *)
  let store, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ()) in
  for i = 1 to 6 do
    commit_write srv f [] (Printf.sprintf "v%d" i)
  done;
  ignore (ok (Gc.collect ~policy:{ Gc.retain_committed = 2; reshare = false } srv));
  ok (Pagestore.flush (Server.pagestore srv));
  let srv2 = Server.create store in
  let blocks = Helpers.ok_str (store.Store.list_blocks ()) in
  Alcotest.(check int) "file recovered" 1 (ok (Server.recover_from_blocks srv2 blocks));
  match Server.list_files srv2 with
  | [ fc ] ->
      let cur = ok (Server.current_version srv2 fc) in
      Helpers.check_bytes "current readable" "v6" (ok (Server.read_page srv2 cur P.root))
  | l -> Alcotest.failf "expected 1 file, got %d" (List.length l)

let test_retain_must_be_positive () =
  let _, srv = Helpers.fresh_server () in
  Alcotest.check_raises "zero retention"
    (Invalid_argument "Gc.collect: retain_committed must be >= 1") (fun () ->
      ignore (Gc.collect ~policy:{ Gc.retain_committed = 0; reshare = false } srv))

let test_background_collector_in_sim () =
  (* The collector as its own simulated process, interleaved with a
     client workload: space stays bounded and no committed data is lost. *)
  let engine = Afs_sim.Engine.create () in
  let store = Store.memory () in
  let srv = Server.create store in
  let f = Helpers.file_with_pages srv 8 in
  let totals =
    Gc.background ~policy:{ Gc.retain_committed = 2; reshare = true } engine srv
      ~period_ms:50.0 ~until_ms:2_000.0
  in
  let writer =
    Afs_sim.Proc.spawn ~name:"writer" engine (fun () ->
        for i = 1 to 100 do
          Afs_sim.Proc.delay 20.0;
          let v = ok (Server.create_version srv f) in
          ok (Server.write_page srv v (path [ i mod 8 ]) (bytes (string_of_int i)));
          ok (Server.commit srv v)
        done)
  in
  ignore writer;
  Afs_sim.Engine.run engine;
  let stats = totals () in
  Alcotest.(check bool) "collector ran" true (stats.Gc.blocks_freed > 0);
  Alcotest.(check bool) "versions pruned" true (stats.Gc.versions_pruned > 50);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "latest commit intact" "100" (ok (Server.read_page srv cur (path [ 4 ])));
  (* Space is near the live set, not the 100-commit history. *)
  let used = block_count store in
  Alcotest.(check bool) (Printf.sprintf "%d blocks bounded" used) true (used < 60)

let () =
  Alcotest.run "gc"
    [
      ( "sweep",
        [
          quick "quiet system untouched" test_collect_on_quiet_system_frees_nothing_live;
          quick "prune respects retention" test_prune_respects_retention;
          quick "pruned blocks freed" test_pruned_blocks_are_freed;
          quick "shared pages survive prune" test_shared_pages_survive_prune;
          quick "aborted versions swept" test_aborted_version_blocks_swept;
          quick "uncommitted versions survive" test_uncommitted_versions_survive_gc;
        ] );
      ( "reshare",
        [
          quick "read-only copies reshared" test_reshare_read_only_copies;
          quick "reshare + sweep reclaims" test_reshare_then_sweep_reclaims_space;
          quick "written subtrees kept" test_reshare_keeps_written_subtrees;
        ] );
      ( "safety",
        [
          quick "never loses live data" test_gc_safety_never_frees_live;
          quick "recovery after gc" test_recovery_after_gc;
          quick "retention validated" test_retain_must_be_positive;
        ] );
      ( "background",
        [ quick "collector as simulated process" test_background_collector_in_sim ] );
    ]
