test/test_page.ml: Afs_core Afs_util Alcotest Array Bytes Char Flags Helpers Page Printf QCheck2 QCheck_alcotest
