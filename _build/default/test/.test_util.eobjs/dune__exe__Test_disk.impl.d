test/test_disk.ml: Afs_disk Alcotest Bytes Disk Fmt Helpers Media
