test/test_flags.mli:
