test/test_commit.ml: Afs_core Afs_util Alcotest Helpers List Ports Printf Server Store
