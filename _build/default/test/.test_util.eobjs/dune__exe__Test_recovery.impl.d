test/test_recovery.ml: Afs_baseline Afs_block Afs_core Afs_disk Afs_stable Afs_util Alcotest Array Fmt Helpers List Pagestore Printf Server Store
