test/test_linear.mli:
