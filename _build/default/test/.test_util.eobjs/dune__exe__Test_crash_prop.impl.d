test/test_crash_prop.ml: Afs_core Afs_stable Afs_util Alcotest Array Fmt Hashtbl Helpers List Pagestore Printf QCheck2 QCheck_alcotest Server Store
