test/test_worm.mli:
