test/test_superfile.mli:
