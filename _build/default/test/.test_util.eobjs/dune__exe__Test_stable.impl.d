test/test_stable.ml: Afs_disk Afs_stable Alcotest Fmt Helpers List Printf Stable_pair
