test/test_baseline.ml: Afs_baseline Afs_util Alcotest Bytes Helpers Printf
