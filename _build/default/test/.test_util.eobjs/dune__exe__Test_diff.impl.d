test/test_diff.ml: Afs_core Afs_util Alcotest Helpers List Pagestore Printf Serialise Server Store
