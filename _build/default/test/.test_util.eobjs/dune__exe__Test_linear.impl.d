test/test_linear.ml: Afs_core Afs_files Afs_util Alcotest Bytes Char Client Errors Helpers Linear Printf QCheck2 QCheck_alcotest Server String
