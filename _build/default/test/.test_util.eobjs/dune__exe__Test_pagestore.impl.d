test/test_pagestore.ml: Afs_core Alcotest Errors Helpers Page Pagestore Store String
