test/test_sim.ml: Afs_sim Afs_util Alcotest Channel Engine Helpers Ivar List Proc
