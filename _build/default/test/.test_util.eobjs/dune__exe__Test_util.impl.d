test/test_util.ml: Afs_util Alcotest Array Bytes Capability Fun Helpers List Option Pagepath Printf Stats Wire Xrng Zipf
