test/test_structure_prop.ml: Afs_core Afs_util Alcotest Errors Helpers List Printf QCheck2 QCheck_alcotest Result Server
