test/test_serialise_prop.ml: Afs_core Afs_util Alcotest Array Errors Helpers List Printf QCheck2 QCheck_alcotest Server String
