test/test_worm.ml: Afs_core Afs_util Alcotest Helpers List Pagestore Printf Server Store
