test/test_workload.ml: Afs_baseline Afs_core Afs_rpc Afs_sim Afs_util Afs_workload Airline Alcotest Array Bank Driver Helpers List Printf Sut Workload
