test/test_serialise_prop.mli:
