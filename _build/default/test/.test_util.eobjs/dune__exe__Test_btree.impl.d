test/test_btree.ml: Afs_core Afs_files Afs_util Alcotest Btree Client Hashtbl Helpers List Printf QCheck2 QCheck_alcotest Server
