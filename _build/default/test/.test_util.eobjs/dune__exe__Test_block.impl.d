test/test_block.ml: Afs_block Afs_disk Afs_util Alcotest Block_server Fmt Hashtbl Helpers List
