test/test_server.ml: Afs_core Afs_util Alcotest Array Bytes Errors Flags Gc Helpers List Printf Server Store
