test/test_naming.ml: Afs_core Afs_naming Afs_util Alcotest Char Client Directory Errors Helpers List Option Printf Server String
