test/test_structure_prop.mli:
