test/test_cache.ml: Afs_core Afs_util Alcotest Cache Helpers List Option Printf Server
