test/test_client.ml: Afs_core Afs_util Alcotest Bytes Client Errors Helpers List Server
