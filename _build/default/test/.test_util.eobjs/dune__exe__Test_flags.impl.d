test/test_flags.ml: Afs_core Alcotest Flags Fun Helpers List QCheck2 QCheck_alcotest
