test/test_superfile.ml: Afs_core Afs_util Alcotest Errors Helpers List Ports Printf Server Superfile
