test/test_rpc.ml: Afs_core Afs_rpc Afs_sim Afs_util Alcotest Engine Fmt Fun Helpers List Printf Proc Remote Rpc
