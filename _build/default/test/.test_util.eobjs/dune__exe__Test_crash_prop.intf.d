test/test_crash_prop.mli:
