test/test_gc.ml: Afs_core Afs_sim Afs_util Alcotest Array Gc Helpers List Pagestore Printf Server Store
