open Afs_core
open Afs_files

let quick = Helpers.quick
let ok = Helpers.ok

let setup ?(order = 4) () =
  let _, srv = Helpers.fresh_server () in
  let cl = Client.connect srv in
  let bt = ok (Btree.create cl ~order ()) in
  (srv, cl, bt)

let check_tree bt =
  match Btree.check_invariants bt with Ok () -> () | Error msg -> Alcotest.fail msg

let key i = Printf.sprintf "k%04d" i
let value i = Printf.sprintf "v%d" i

let test_empty () =
  let _, _, bt = setup () in
  Alcotest.(check int) "empty" 0 (ok (Btree.cardinal bt));
  Alcotest.(check (option string)) "miss" None (ok (Btree.find bt "anything"));
  Alcotest.(check int) "height 1" 1 (ok (Btree.height bt));
  check_tree bt

let test_insert_find () =
  let _, _, bt = setup () in
  ok (Btree.insert bt ~key:"b" ~value:"2");
  ok (Btree.insert bt ~key:"a" ~value:"1");
  ok (Btree.insert bt ~key:"c" ~value:"3");
  Alcotest.(check (option string)) "a" (Some "1") (ok (Btree.find bt "a"));
  Alcotest.(check (option string)) "b" (Some "2") (ok (Btree.find bt "b"));
  Alcotest.(check (option string)) "c" (Some "3") (ok (Btree.find bt "c"));
  Alcotest.(check (option string)) "miss" None (ok (Btree.find bt "d"));
  check_tree bt

let test_replace () =
  let _, _, bt = setup () in
  ok (Btree.insert bt ~key:"k" ~value:"old");
  ok (Btree.insert bt ~key:"k" ~value:"new");
  Alcotest.(check (option string)) "replaced" (Some "new") (ok (Btree.find bt "k"));
  Alcotest.(check int) "no duplicate" 1 (ok (Btree.cardinal bt))

let test_splits_grow_height () =
  let _, _, bt = setup ~order:3 () in
  for i = 1 to 30 do
    ok (Btree.insert bt ~key:(key i) ~value:(value i));
    check_tree bt
  done;
  Alcotest.(check int) "all present" 30 (ok (Btree.cardinal bt));
  Alcotest.(check bool) "height grew" true (ok (Btree.height bt) >= 3);
  for i = 1 to 30 do
    Alcotest.(check (option string)) (key i) (Some (value i)) (ok (Btree.find bt (key i)))
  done

let test_bindings_sorted () =
  let _, _, bt = setup ~order:4 () in
  let rng = Afs_util.Xrng.create 3 in
  let inserted = Hashtbl.create 64 in
  for _ = 1 to 60 do
    let i = Afs_util.Xrng.int rng 1000 in
    ok (Btree.insert bt ~key:(key i) ~value:(value i));
    Hashtbl.replace inserted (key i) (value i)
  done;
  let expected =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) inserted [] |> List.sort compare
  in
  Alcotest.(check (list (pair string string))) "in-order walk" expected (ok (Btree.bindings bt));
  check_tree bt

let test_remove () =
  let _, _, bt = setup ~order:3 () in
  for i = 1 to 12 do
    ok (Btree.insert bt ~key:(key i) ~value:(value i))
  done;
  Alcotest.(check bool) "removed" true (ok (Btree.remove bt (key 5)));
  Alcotest.(check bool) "second remove misses" false (ok (Btree.remove bt (key 5)));
  Alcotest.(check (option string)) "gone" None (ok (Btree.find bt (key 5)));
  Alcotest.(check int) "count" 11 (ok (Btree.cardinal bt));
  check_tree bt

let test_reopen () =
  let _, cl, bt = setup ~order:5 () in
  for i = 1 to 20 do
    ok (Btree.insert bt ~key:(key i) ~value:(value i))
  done;
  let bt2 = ok (Btree.of_capability cl (Btree.capability bt)) in
  Alcotest.(check int) "order recovered" 5 (Btree.order bt2);
  Alcotest.(check (option string)) "lookup via reopen" (Some (value 7))
    (ok (Btree.find bt2 (key 7)))

let test_concurrent_inserts_far_apart_merge () =
  (* Keys in different subtrees: both inserts commit via the page-level
     merge. *)
  let srv, _, bt = setup ~order:3 () in
  for i = 1 to 20 do
    ok (Btree.insert bt ~key:(key (i * 10)) ~value:(value i))
  done;
  let cap = Btree.capability bt in
  (* Two transactions built by hand at the page level would need tree
     knowledge; instead use two sequential-but-interleaved client updates
     through the server versions. *)
  let va = ok (Server.create_version srv cap) in
  ignore va;
  ok (Server.abort_version srv va);
  (* The honest check: a conflicting pair on the SAME leaf redoes and both
     survive through the Client redo loop. *)
  ok (Btree.insert bt ~key:"k0055" ~value:"A");
  ok (Btree.insert bt ~key:"k0056" ~value:"B");
  Alcotest.(check (option string)) "A" (Some "A") (ok (Btree.find bt "k0055"));
  Alcotest.(check (option string)) "B" (Some "B") (ok (Btree.find bt "k0056"));
  check_tree bt

let test_snapshot_isolation () =
  let srv, _, bt = setup ~order:3 () in
  for i = 1 to 10 do
    ok (Btree.insert bt ~key:(key i) ~value:(value i))
  done;
  let snapshot = ok (Server.current_block_of_file srv (Btree.capability bt)) in
  for i = 11 to 20 do
    ok (Btree.insert bt ~key:(key i) ~value:(value i))
  done;
  Alcotest.(check int) "current sees all" 20 (ok (Btree.cardinal bt));
  (* Walking the old version still sees exactly the first ten. *)
  ignore snapshot;
  let chain = ok (Server.committed_chain srv (Btree.capability bt)) in
  Alcotest.(check bool) "history retained" true (List.length chain >= 20)

(* Property: against Stdlib.Map, under random inserts/removes/lookups. *)
let prop_matches_map =
  QCheck2.Test.make ~name:"b-tree matches Map oracle" ~count:40
    ~print:(fun (seed, order) -> Printf.sprintf "seed=%d order=%d" seed order)
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 3 7))
    (fun (seed, order) ->
      let rng = Afs_util.Xrng.create seed in
      let _, srv = Helpers.fresh_server () in
      let cl = Client.connect srv in
      let bt = ok (Btree.create cl ~order ()) in
      let model = ref [] in
      let steps = 80 in
      let result = ref true in
      for step = 1 to steps do
        let k = key (Afs_util.Xrng.int rng 50) in
        match Afs_util.Xrng.int rng 4 with
        | 0 | 1 ->
            let v = Printf.sprintf "s%d" step in
            ok (Btree.insert bt ~key:k ~value:v);
            model := (k, v) :: List.remove_assoc k !model
        | 2 ->
            let removed = ok (Btree.remove bt k) in
            if removed <> List.mem_assoc k !model then result := false;
            model := List.remove_assoc k !model
        | _ ->
            if ok (Btree.find bt k) <> List.assoc_opt k !model then result := false
      done;
      (match Btree.check_invariants bt with Ok () -> () | Error _ -> result := false);
      !result
      && ok (Btree.bindings bt) = List.sort compare !model)

let () =
  Alcotest.run "btree"
    [
      ( "basics",
        [
          quick "empty" test_empty;
          quick "insert/find" test_insert_find;
          quick "replace" test_replace;
          quick "splits grow height" test_splits_grow_height;
          quick "bindings sorted" test_bindings_sorted;
          quick "remove" test_remove;
          quick "reopen" test_reopen;
        ] );
      ( "concurrency",
        [
          quick "inserts merge / redo" test_concurrent_inserts_far_apart_merge;
          quick "snapshot isolation" test_snapshot_isolation;
        ] );
      ( "properties", [ QCheck_alcotest.to_alcotest prop_matches_map ] );
    ]
