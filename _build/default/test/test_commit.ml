open Afs_core
module P = Afs_util.Pagepath

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok
let path = Helpers.path
let expect_conflict = Helpers.expect_conflict

let counter srv name = Afs_util.Stats.Counter.get (Server.counters srv) name

let read srv v p = Helpers.str (ok (Server.read_page srv v (path p)))
let write srv v p s = ok (Server.write_page srv v (path p) (bytes s))

let current_data srv f p =
  let cur = ok (Server.current_version srv f) in
  Helpers.str (ok (Server.read_page srv cur (path p)))

(* A file with two levels: root -> 3 children, each with 2 grandchildren. *)
let deep_file srv =
  let f = ok (Server.create_file srv ~data:(bytes "root") ()) in
  let v = ok (Server.create_version srv f) in
  for i = 0 to 2 do
    let child =
      ok
        (Server.insert_page srv v ~parent:P.root ~index:i
           ~data:(bytes (Printf.sprintf "c%d" i)) ())
    in
    for j = 0 to 1 do
      ignore
        (ok
           (Server.insert_page srv v ~parent:child ~index:j
              ~data:(bytes (Printf.sprintf "g%d%d" i j)) ()))
    done
  done;
  ok (Server.commit srv v);
  f

(* {2 Kung & Robinson condition (1): strictly sequential updates} *)

let test_sequential_commits_always_succeed () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  for i = 1 to 10 do
    let v = ok (Server.create_version srv f) in
    write srv v [ i mod 4 ] (Printf.sprintf "round %d" i);
    ok (Server.commit srv v)
  done;
  Alcotest.(check int) "all fastpath" 11 (counter srv "commits.fastpath");
  Alcotest.(check int) "no conflicts" 0 (counter srv "commits.conflict")

(* {2 Condition (2): intersection tests} *)

let test_disjoint_writes_merge () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let va = ok (Server.create_version srv f) in
  let vb = ok (Server.create_version srv f) in
  write srv va [ 0 ] "a-wrote";
  write srv vb [ 2 ] "b-wrote";
  ok (Server.commit srv va);
  ok (Server.commit srv vb);
  Alcotest.(check string) "a's write survives" "a-wrote" (current_data srv f [ 0 ]);
  Alcotest.(check string) "b's write survives" "b-wrote" (current_data srv f [ 2 ]);
  Alcotest.(check string) "untouched page intact" "p1" (current_data srv f [ 1 ]);
  Alcotest.(check int) "one merge" 1 (counter srv "commits.merged")

let test_write_read_conflict () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let reader = ok (Server.create_version srv f) in
  let writer = ok (Server.create_version srv f) in
  let _ = read srv reader [ 1 ] in
  write srv reader [ 3 ] "reader-writes-elsewhere";
  write srv writer [ 1 ] "overwrites what reader saw";
  ok (Server.commit srv writer);
  expect_conflict (Server.commit srv reader);
  Alcotest.(check bool) "version removed" true
    (ok (Server.version_status srv reader) = Server.Aborted);
  Alcotest.(check string) "writer's value stands" "overwrites what reader saw"
    (current_data srv f [ 1 ])

let test_read_before_write_same_order_ok () =
  (* The reader commits FIRST: the later writer is then checked against
     the reader — reader wrote nothing the writer read, so both commit. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let reader = ok (Server.create_version srv f) in
  let writer = ok (Server.create_version srv f) in
  let _ = read srv reader [ 1 ] in
  write srv writer [ 1 ] "new value";
  ok (Server.commit srv reader);
  ok (Server.commit srv writer);
  Alcotest.(check string) "write landed" "new value" (current_data srv f [ 1 ])

let test_blind_write_overlap_last_wins () =
  (* Both write page 0 without reading it: serialisable as first;second,
     and the merge keeps the later committer's value. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let va = ok (Server.create_version srv f) in
  let vb = ok (Server.create_version srv f) in
  write srv va [ 0 ] "first";
  write srv vb [ 0 ] "second";
  ok (Server.commit srv va);
  ok (Server.commit srv vb);
  Alcotest.(check string) "later commit wins" "second" (current_data srv f [ 0 ])

let test_rmw_conflict () =
  (* Classic lost-update: both read-modify-write the same page; the second
     committer must abort. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let va = ok (Server.create_version srv f) in
  let vb = ok (Server.create_version srv f) in
  let _ = read srv va [ 0 ] in
  write srv va [ 0 ] "a";
  let _ = read srv vb [ 0 ] in
  write srv vb [ 0 ] "b";
  ok (Server.commit srv va);
  expect_conflict (Server.commit srv vb)

let test_reader_vs_root_writer () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let reader = ok (Server.create_version srv f) in
  let writer = ok (Server.create_version srv f) in
  let _ = Helpers.str (ok (Server.read_page srv reader P.root)) in
  write srv reader [ 0 ] "x";
  ok (Server.write_page srv writer P.root (bytes "root rewritten"));
  ok (Server.commit srv writer);
  expect_conflict (Server.commit srv reader)

(* {2 Structure conflicts (S/M flags)} *)

let test_structure_conflict_m_vs_s () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let searcher = ok (Server.create_version srv f) in
  let restructurer = ok (Server.create_version srv f) in
  (* The searcher consults the root's references (reads a page). *)
  let _ = read srv searcher [ 1 ] in
  write srv searcher [ 1 ] "based on old layout";
  (* The restructurer deletes a sibling, renumbering the table. *)
  ok (Server.remove_page srv restructurer ~parent:P.root ~index:0);
  ok (Server.commit srv restructurer);
  expect_conflict (Server.commit srv searcher)

let test_structure_adoption_when_unsearched () =
  (* The committed version restructured the root, but the candidate only
     wrote the root's data — never searched its references — so the
     candidate adopts the new structure and both commits stand. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let data_writer = ok (Server.create_version srv f) in
  let restructurer = ok (Server.create_version srv f) in
  ok (Server.write_page srv data_writer P.root (bytes "new root data"));
  let _ =
    ok (Server.insert_page srv restructurer ~parent:P.root ~index:2 ~data:(bytes "p2") ())
  in
  ok (Server.commit srv restructurer);
  ok (Server.commit srv data_writer);
  Alcotest.(check string) "root data from candidate" "new root data"
    (current_data srv f []);
  Alcotest.(check string) "adopted structure" "p2" (current_data srv f [ 2 ]);
  let cur = ok (Server.current_version srv f) in
  let info = ok (Server.page_info srv cur P.root) in
  Alcotest.(check int) "three children" 3 info.Server.nrefs

let test_candidate_restructure_over_touched_subtree_conflicts () =
  (* Conservative rule: the candidate restructured the root while the
     committed update accessed pages below it. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let restructurer = ok (Server.create_version srv f) in
  let writer = ok (Server.create_version srv f) in
  ok (Server.remove_page srv restructurer ~parent:P.root ~index:2);
  write srv writer [ 0 ] "deep write";
  ok (Server.commit srv writer);
  expect_conflict (Server.commit srv restructurer)

(* {2 Subtree granularity (the deep tree)} *)

let test_disjoint_subtrees_no_conflict () =
  let _, srv = Helpers.fresh_server () in
  let f = deep_file srv in
  let va = ok (Server.create_version srv f) in
  let vb = ok (Server.create_version srv f) in
  let _ = read srv va [ 0; 0 ] in
  write srv va [ 0; 0 ] "a";
  let _ = read srv vb [ 2; 1 ] in
  write srv vb [ 2; 1 ] "b";
  ok (Server.commit srv va);
  ok (Server.commit srv vb);
  Alcotest.(check string) "a" "a" (current_data srv f [ 0; 0 ]);
  Alcotest.(check string) "b" "b" (current_data srv f [ 2; 1 ])

let test_same_subtree_sibling_leaves_no_conflict () =
  let _, srv = Helpers.fresh_server () in
  let f = deep_file srv in
  let va = ok (Server.create_version srv f) in
  let vb = ok (Server.create_version srv f) in
  let _ = read srv va [ 1; 0 ] in
  write srv va [ 1; 0 ] "a";
  let _ = read srv vb [ 1; 1 ] in
  write srv vb [ 1; 1 ] "b";
  ok (Server.commit srv va);
  ok (Server.commit srv vb);
  Alcotest.(check string) "a" "a" (current_data srv f [ 1; 0 ]);
  Alcotest.(check string) "b" "b" (current_data srv f [ 1; 1 ])

let test_deep_read_vs_deep_write_conflict () =
  let _, srv = Helpers.fresh_server () in
  let f = deep_file srv in
  let rdr = ok (Server.create_version srv f) in
  let wtr = ok (Server.create_version srv f) in
  let _ = read srv rdr [ 1; 1 ] in
  write srv rdr [ 0; 0 ] "elsewhere";
  write srv wtr [ 1; 1 ] "stomp";
  ok (Server.commit srv wtr);
  expect_conflict (Server.commit srv rdr)

let test_serialise_skips_untouched_subtrees () =
  let _, srv = Helpers.fresh_server () in
  let f = deep_file srv in
  let va = ok (Server.create_version srv f) in
  let vb = ok (Server.create_version srv f) in
  write srv va [ 0; 0 ] "a";
  write srv vb [ 2; 0 ] "b";
  ok (Server.commit srv va);
  let before = counter srv "serialise.pages_visited" in
  ok (Server.commit srv vb);
  let visited = counter srv "serialise.pages_visited" - before in
  (* Both roots, plus each side's touched child and leaf: far fewer than
     the 10 pages of the whole tree. *)
  Alcotest.(check bool) (Printf.sprintf "visited %d <= 6" visited) true (visited <= 6)

(* {2 Interception chains} *)

let test_three_way_merge_chain () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 6 in
  let v1 = ok (Server.create_version srv f) in
  let v2 = ok (Server.create_version srv f) in
  let v3 = ok (Server.create_version srv f) in
  write srv v1 [ 0 ] "one";
  write srv v2 [ 1 ] "two";
  write srv v3 [ 2 ] "three";
  ok (Server.commit srv v1);
  ok (Server.commit srv v2);
  ok (Server.commit srv v3);
  Alcotest.(check string) "one" "one" (current_data srv f [ 0 ]);
  Alcotest.(check string) "two" "two" (current_data srv f [ 1 ]);
  Alcotest.(check string) "three" "three" (current_data srv f [ 2 ]);
  (* Initial version, the page-population commit, then v1..v3. *)
  Alcotest.(check int) "chain length" 5 (List.length (ok (Server.committed_chain srv f)))

let test_conflict_only_with_conflicting_predecessor () =
  (* v3 conflicts with v1's write but not v2's: still a conflict, found
     while walking the interception chain. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 6 in
  let v1 = ok (Server.create_version srv f) in
  let v2 = ok (Server.create_version srv f) in
  let v3 = ok (Server.create_version srv f) in
  write srv v1 [ 0 ] "one";
  write srv v2 [ 1 ] "two";
  let _ = read srv v3 [ 0 ] in
  write srv v3 [ 5 ] "three";
  ok (Server.commit srv v1);
  ok (Server.commit srv v2);
  expect_conflict (Server.commit srv v3)

let test_merged_version_carries_all_updates () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let va = ok (Server.create_version srv f) in
  let vb = ok (Server.create_version srv f) in
  write srv va [ 0 ] "a0";
  write srv va [ 1 ] "a1";
  write srv vb [ 2 ] "b2";
  write srv vb [ 3 ] "b3";
  ok (Server.commit srv va);
  ok (Server.commit srv vb);
  List.iteri
    (fun i expected ->
      Alcotest.(check string) (Printf.sprintf "page %d" i) expected (current_data srv f [ i ]))
    [ "a0"; "a1"; "b2"; "b3" ]

let test_commit_against_stale_base_two_generations () =
  (* The candidate's base is two commits behind; the commit loop must
     merge against each intervening version. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 6 in
  let stale = ok (Server.create_version srv f) in
  write srv stale [ 5 ] "stale but compatible";
  for i = 0 to 1 do
    let v = ok (Server.create_version srv f) in
    write srv v [ i ] (Printf.sprintf "gen%d" i);
    ok (Server.commit srv v)
  done;
  ok (Server.commit srv stale);
  Alcotest.(check string) "stale write survives" "stale but compatible"
    (current_data srv f [ 5 ]);
  Alcotest.(check string) "gen0 survives" "gen0" (current_data srv f [ 0 ]);
  Alcotest.(check string) "gen1 survives" "gen1" (current_data srv f [ 1 ])

let test_conflicting_version_frees_private_pages () =
  let store, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let loser = ok (Server.create_version srv f) in
  let winner = ok (Server.create_version srv f) in
  let _ = read srv loser [ 0 ] in
  write srv winner [ 0 ] "w";
  ok (Server.commit srv winner);
  let blocks_before = List.length (Helpers.ok_str (store.Store.list_blocks ())) in
  expect_conflict (Server.commit srv loser);
  let blocks_after = List.length (Helpers.ok_str (store.Store.list_blocks ())) in
  Alcotest.(check bool) "loser's copies freed" true (blocks_after < blocks_before)

(* {2 Commit across servers sharing a store} *)

let test_two_servers_one_store () =
  let store = Store.memory () in
  let ports = Ports.create () in
  let srv1 = Server.create ~seed:7 ~ports store in
  let srv2 = Server.create ~seed:7 ~ports store in
  let f = ok (Server.create_file srv1 ~data:(bytes "shared") ()) in
  (* Server 2 learns about the file from storage. *)
  let blocks = Helpers.ok_str (store.Store.list_blocks ()) in
  Alcotest.(check int) "one file recovered" 1 (ok (Server.recover_from_blocks srv2 blocks));
  let v1 = ok (Server.create_version srv1 f) in
  ok (Server.write_page srv1 v1 P.root (bytes "via server 1"));
  ok (Server.commit srv1 v1);
  (* Server 2's stale current hint self-corrects through the chain. *)
  let v2 = ok (Server.create_version srv2 f) in
  ok (Server.write_page srv2 v2 P.root (bytes "via server 2"));
  ok (Server.commit srv2 v2);
  let cur1 = ok (Server.current_version srv1 f) in
  Helpers.check_bytes "server 1 sees server 2's commit" "via server 2"
    (ok (Server.read_page srv1 cur1 P.root))

let () =
  Alcotest.run "commit"
    [
      ( "sequential",
        [ quick "sequential commits succeed" test_sequential_commits_always_succeed ] );
      ( "intersection",
        [
          quick "disjoint writes merge" test_disjoint_writes_merge;
          quick "write/read conflict" test_write_read_conflict;
          quick "reader first is fine" test_read_before_write_same_order_ok;
          quick "blind writes: last wins" test_blind_write_overlap_last_wins;
          quick "rmw lost-update conflict" test_rmw_conflict;
          quick "reader vs root writer" test_reader_vs_root_writer;
        ] );
      ( "structure",
        [
          quick "M vs S conflict" test_structure_conflict_m_vs_s;
          quick "adoption when unsearched" test_structure_adoption_when_unsearched;
          quick "conservative candidate-M conflict"
            test_candidate_restructure_over_touched_subtree_conflicts;
        ] );
      ( "subtrees",
        [
          quick "disjoint subtrees" test_disjoint_subtrees_no_conflict;
          quick "sibling leaves" test_same_subtree_sibling_leaves_no_conflict;
          quick "deep read vs write" test_deep_read_vs_deep_write_conflict;
          quick "skips untouched subtrees" test_serialise_skips_untouched_subtrees;
        ] );
      ( "chains",
        [
          quick "three-way merge chain" test_three_way_merge_chain;
          quick "conflict found along chain" test_conflict_only_with_conflicting_predecessor;
          quick "merge carries all updates" test_merged_version_carries_all_updates;
          quick "stale base two generations" test_commit_against_stale_base_two_generations;
          quick "conflict frees private pages" test_conflicting_version_frees_private_pages;
        ] );
      ( "multi-server",
        [ quick "two servers one store" test_two_servers_one_store ] );
    ]
