open Afs_core

let quick = Helpers.quick

let flag_testable = Alcotest.testable Flags.pp Flags.equal

let test_clear_is_legal () =
  Alcotest.(check bool) "legal" true (Flags.is_legal Flags.clear);
  Alcotest.(check int) "nibble 0" 0 (Flags.to_nibble Flags.clear)

let test_exactly_13_states () =
  Alcotest.(check int) "13 legal combinations" 13 (List.length Flags.all);
  let nibbles = List.map Flags.to_nibble Flags.all in
  Alcotest.(check (list int)) "nibbles 0..12" (List.init 13 Fun.id) nibbles

let test_all_states_legal () =
  List.iter (fun f -> Alcotest.(check bool) "legal" true (Flags.is_legal f)) Flags.all

let test_nibble_bijection () =
  List.iter
    (fun f ->
      match Flags.of_nibble (Flags.to_nibble f) with
      | Some f' -> Alcotest.check flag_testable "roundtrip" f f'
      | None -> Alcotest.fail "decode failed")
    Flags.all

let test_nibble_range () =
  Alcotest.(check (option flag_testable)) "13 invalid" None (Flags.of_nibble 13);
  Alcotest.(check (option flag_testable)) "15 invalid" None (Flags.of_nibble 15);
  Alcotest.(check (option flag_testable)) "negative invalid" None (Flags.of_nibble (-1))

let test_make_enforces_invariants () =
  Alcotest.check_raises "r without c" (Invalid_argument "Flags.make: illegal combination")
    (fun () -> ignore (Flags.make ~r:true ~copied:false ()));
  Alcotest.check_raises "m without s" (Invalid_argument "Flags.make: illegal combination")
    (fun () -> ignore (Flags.make ~m:true ~copied:true ()))

let test_record_read () =
  let f = Flags.record Flags.clear Flags.Read in
  Alcotest.(check bool) "c set" true f.Flags.c;
  Alcotest.(check bool) "r set" true f.Flags.r;
  Alcotest.(check bool) "w clear" false f.Flags.w

let test_record_write () =
  let f = Flags.record Flags.clear Flags.Write in
  Alcotest.(check bool) "c" true f.Flags.c;
  Alcotest.(check bool) "w" true f.Flags.w;
  Alcotest.(check bool) "r independent" false f.Flags.r

let test_record_search_modify () =
  let s = Flags.record Flags.clear Flags.Search in
  Alcotest.(check bool) "s" true s.Flags.s;
  Alcotest.(check bool) "m clear" false s.Flags.m;
  let m = Flags.record Flags.clear Flags.Modify in
  Alcotest.(check bool) "m" true m.Flags.m;
  Alcotest.(check bool) "m implies s" true m.Flags.s

let test_record_accumulates () =
  let f = Flags.record (Flags.record Flags.clear Flags.Read) Flags.Write in
  Alcotest.(check bool) "r kept" true f.Flags.r;
  Alcotest.(check bool) "w added" true f.Flags.w

let test_record_preserves_legality () =
  List.iter
    (fun f ->
      List.iter
        (fun a -> Alcotest.(check bool) "legal after record" true
            (Flags.is_legal (Flags.record f a)))
        [ Flags.Read; Flags.Write; Flags.Search; Flags.Modify ])
    Flags.all

let test_union () =
  let r = Flags.record Flags.clear Flags.Read in
  let w = Flags.record Flags.clear Flags.Write in
  let u = Flags.union r w in
  Alcotest.(check bool) "r" true u.Flags.r;
  Alcotest.(check bool) "w" true u.Flags.w;
  Alcotest.check flag_testable "union with clear" r (Flags.union r Flags.clear)

let test_union_closed () =
  List.iter
    (fun a ->
      List.iter
        (fun b -> Alcotest.(check bool) "legal union" true (Flags.is_legal (Flags.union a b)))
        Flags.all)
    Flags.all

(* Property: encode/decode over the nibble space is exactly the legal set. *)
let prop_nibble_coverage =
  QCheck2.Test.make ~name:"of_nibble defined exactly on 0..12" ~count:100
    (QCheck2.Gen.int_range (-10) 30)
    (fun n ->
      match Flags.of_nibble n with
      | Some f -> n >= 0 && n <= 12 && Flags.to_nibble f = n
      | None -> n < 0 || n > 12)

let prop_union_idempotent =
  let gen = QCheck2.Gen.map (fun n ->
      match Flags.of_nibble (abs n mod 13) with Some f -> f | None -> Flags.clear)
      QCheck2.Gen.int
  in
  QCheck2.Test.make ~name:"union idempotent and commutative" ~count:200
    (QCheck2.Gen.pair gen gen)
    (fun (a, b) ->
      Flags.equal (Flags.union a b) (Flags.union b a)
      && Flags.equal (Flags.union a a) a)

let () =
  Alcotest.run "flags"
    [
      ( "states",
        [
          quick "clear is legal" test_clear_is_legal;
          quick "exactly 13 states" test_exactly_13_states;
          quick "all states legal" test_all_states_legal;
          quick "nibble bijection" test_nibble_bijection;
          quick "nibble range" test_nibble_range;
          quick "make enforces invariants" test_make_enforces_invariants;
        ] );
      ( "record",
        [
          quick "read" test_record_read;
          quick "write" test_record_write;
          quick "search/modify" test_record_search_modify;
          quick "accumulates" test_record_accumulates;
          quick "preserves legality" test_record_preserves_legality;
        ] );
      ( "union",
        [
          quick "basic" test_union;
          quick "closed over legal states" test_union_closed;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_nibble_coverage;
          QCheck_alcotest.to_alcotest prop_union_idempotent;
        ] );
    ]
