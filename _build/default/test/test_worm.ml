(* Store.worm_hybrid: the §6 optical configuration. *)

open Afs_core
module P = Afs_util.Pagepath

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok
let ok_str = Helpers.ok_str
let path = Helpers.path

let fresh ?(blocks = 4096) ?(block_size = 4096) () =
  Store.worm_hybrid ~blocks ~block_size ()

let test_first_write_goes_to_bulk () =
  let store, stats = fresh () in
  let b = ok_str (store.Store.allocate ()) in
  ok_str (store.Store.write b (bytes "etched"));
  let s = stats () in
  Alcotest.(check int) "bulk write" 1 s.Store.bulk_writes;
  Alcotest.(check int) "no index traffic" 0 s.Store.index_writes;
  Helpers.check_bytes "readable" "etched" (ok_str (store.Store.read b))

let test_rewrite_migrates_to_index () =
  let store, stats = fresh () in
  let b = ok_str (store.Store.allocate ()) in
  ok_str (store.Store.write b (bytes "v1"));
  ok_str (store.Store.write b (bytes "v2"));
  ok_str (store.Store.write b (bytes "v3"));
  let s = stats () in
  Alcotest.(check int) "one bulk etch" 1 s.Store.bulk_writes;
  Alcotest.(check int) "rewrites absorbed" 2 s.Store.index_writes;
  Alcotest.(check int) "one migrated block" 1 s.Store.index_blocks;
  Helpers.check_bytes "index copy wins" "v3" (ok_str (store.Store.read b))

let test_free_reclaims_index_not_bulk () =
  let store, stats = fresh () in
  let b1 = ok_str (store.Store.allocate ()) in
  ok_str (store.Store.write b1 (bytes "once"));
  let b2 = ok_str (store.Store.allocate ()) in
  ok_str (store.Store.write b2 (bytes "first"));
  ok_str (store.Store.write b2 (bytes "again"));
  ok_str (store.Store.free b1);
  ok_str (store.Store.free b2);
  let s = stats () in
  Alcotest.(check int) "bulk space stays occupied" 2 s.Store.bulk_blocks;
  Alcotest.(check int) "index space reclaimed" 0 s.Store.index_blocks;
  Alcotest.(check (list int)) "allocation table empty" [] (ok_str (store.Store.list_blocks ()))

let test_full_file_service_on_worm () =
  let store, stats = fresh ~block_size:32768 () in
  let srv = Server.create store in
  let f = Helpers.file_with_pages srv 4 in
  for i = 1 to 20 do
    let v = ok (Server.create_version srv f) in
    ok (Server.write_page srv v (path [ i mod 4 ]) (bytes (Printf.sprintf "r%d" i)));
    ok (Server.commit srv v)
  done;
  ok (Pagestore.flush (Server.pagestore srv));
  (* All history remains readable — the WORM platter keeps everything. *)
  let chain = ok (Server.committed_chain srv f) in
  Alcotest.(check int) "22 versions" 22 (List.length chain);
  let oldest = ok (Server.version_of_block srv (List.hd chain)) in
  Helpers.check_bytes "oldest readable" "root" (ok (Server.read_page srv oldest P.root));
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "newest readable" "r20" (ok (Server.read_page srv cur (path [ 0 ])));
  (* Only version pages migrated: data pages are written exactly once. *)
  let s = stats () in
  Alcotest.(check bool)
    (Printf.sprintf "index blocks (%d) only the version pages (%d)" s.Store.index_blocks
       (List.length chain))
    true
    (s.Store.index_blocks <= List.length chain)

let test_crash_recovery_on_worm () =
  let store, _ = fresh ~block_size:32768 () in
  let srv = Server.create ~seed:7 store in
  let f = Helpers.file_with_pages srv 3 in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "committed before crash"));
  ok (Server.commit srv v);
  Server.crash srv;
  let srv2 = Server.create ~seed:7 store in
  ignore (ok (Server.recover_from_blocks srv2 (ok_str (store.Store.list_blocks ()))));
  match Server.list_files srv2 with
  | [ fc ] ->
      let cur = ok (Server.current_version srv2 fc) in
      Helpers.check_bytes "state recovered from platter" "committed before crash"
        (ok (Server.read_page srv2 cur (path [ 0 ])))
  | l -> Alcotest.failf "expected 1 file, got %d" (List.length l)

let test_locks_work () =
  let store, _ = fresh () in
  let b = ok_str (store.Store.allocate ()) in
  Alcotest.(check bool) "lock" true (store.Store.lock b);
  Alcotest.(check bool) "contended" false (store.Store.lock b);
  store.Store.unlock b;
  Alcotest.(check bool) "relock" true (store.Store.lock b)

let () =
  Alcotest.run "worm_hybrid"
    [
      ( "semantics",
        [
          quick "first write to bulk" test_first_write_goes_to_bulk;
          quick "rewrite migrates to index" test_rewrite_migrates_to_index;
          quick "free reclaims only index" test_free_reclaims_index_not_bulk;
          quick "locks" test_locks_work;
        ] );
      ( "file service",
        [
          quick "full service on worm" test_full_file_service_on_worm;
          quick "crash recovery on worm" test_crash_recovery_on_worm;
        ] );
    ]
