module Twopl = Afs_baseline.Twopl
module Tsorder = Afs_baseline.Tsorder

let quick = Helpers.quick
let bytes = Helpers.bytes

(* {2 Two-phase locking (XDFS-style)} *)

let fresh_2pl ?(vulnerable_after_ms = 50.0) () =
  let clock_value = ref 0.0 in
  let t = Twopl.create ~vulnerable_after_ms ~clock:(fun () -> !clock_value) () in
  (t, clock_value)

let ok_2pl = function
  | Ok v -> v
  | Error (d : Twopl.denial) -> Alcotest.failf "denied by txn %d" d.Twopl.holder

let test_2pl_simple_txn () =
  let t, _ = fresh_2pl () in
  let txn = Twopl.begin_ t in
  let v = ok_2pl (Twopl.read t txn ~obj:1) in
  Alcotest.(check int) "fresh object empty" 0 (Bytes.length v);
  ignore (ok_2pl (Twopl.write t txn ~obj:1 (bytes "hello")));
  ignore (ok_2pl (Twopl.commit t txn));
  Helpers.check_bytes "committed" "hello" (Twopl.value t ~obj:1)

let test_2pl_writes_buffered_until_commit () =
  let t, _ = fresh_2pl () in
  let txn = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.write t txn ~obj:1 (bytes "draft")));
  Alcotest.(check int) "not visible" 0 (Bytes.length (Twopl.value t ~obj:1));
  ignore (ok_2pl (Twopl.commit t txn));
  Helpers.check_bytes "visible" "draft" (Twopl.value t ~obj:1)

let test_2pl_readers_share () =
  let t, _ = fresh_2pl () in
  let a = Twopl.begin_ t and b = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.read t a ~obj:1));
  ignore (ok_2pl (Twopl.read t b ~obj:1));
  ignore (ok_2pl (Twopl.commit t a));
  ignore (ok_2pl (Twopl.commit t b))

let test_2pl_iwrite_excludes_iwrite () =
  let t, _ = fresh_2pl () in
  let a = Twopl.begin_ t and b = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.write t a ~obj:1 (bytes "a")));
  (match Twopl.write t b ~obj:1 (bytes "b") with
  | Error d -> Alcotest.(check int) "held by a" (Twopl.txn_id a) d.Twopl.holder
  | Ok () -> Alcotest.fail "second intention-write granted");
  Twopl.abort t a;
  ignore (ok_2pl (Twopl.write t b ~obj:1 (bytes "b")));
  ignore (ok_2pl (Twopl.commit t b));
  Helpers.check_bytes "b's write" "b" (Twopl.value t ~obj:1)

let test_2pl_iwrite_compatible_with_readers_until_commit () =
  let t, _ = fresh_2pl () in
  let writer = Twopl.begin_ t and reader = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.read t reader ~obj:1));
  (* Intention-write coexists with the reader... *)
  ignore (ok_2pl (Twopl.write t writer ~obj:1 (bytes "w")));
  (* ...but the commit upgrade is denied while the reader holds on. *)
  (match Twopl.commit t writer with
  | Error d -> Alcotest.(check int) "reader in the way" (Twopl.txn_id reader) d.Twopl.holder
  | Ok () -> Alcotest.fail "commit lock granted over a reader");
  ignore (ok_2pl (Twopl.commit t reader));
  ignore (ok_2pl (Twopl.commit t writer));
  Helpers.check_bytes "landed after reader left" "w" (Twopl.value t ~obj:1)

let test_2pl_reader_blocked_by_commit_lock () =
  (* Can't easily hold a commit lock open (commit is atomic here), but a
     reader arriving against an intention-write still succeeds, which is
     the XDFS compatibility matrix. *)
  let t, _ = fresh_2pl () in
  let writer = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.write t writer ~obj:1 (bytes "w")));
  let reader = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.read t reader ~obj:1));
  Twopl.abort t writer;
  ignore (ok_2pl (Twopl.commit t reader))

let test_2pl_vulnerable_lock_prodded () =
  let t, clock = fresh_2pl ~vulnerable_after_ms:10.0 () in
  let hoarder = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.write t hoarder ~obj:1 (bytes "hoard")));
  clock := 5.0;
  (* Too early: the holder is busy. *)
  Alcotest.(check bool) "prod refused early" false (Twopl.prod t ~victim:(Twopl.txn_id hoarder));
  clock := 20.0;
  (match Twopl.write t (Twopl.begin_ t) ~obj:1 (bytes "want it") with
  | Error d -> Alcotest.(check bool) "vulnerable now" true d.Twopl.vulnerable
  | Ok () -> Alcotest.fail "lock vanished");
  Alcotest.(check bool) "prod succeeds" true (Twopl.prod t ~victim:(Twopl.txn_id hoarder));
  Alcotest.(check bool) "hoarder aborted" false (Twopl.is_active t hoarder)

let test_2pl_abort_releases () =
  let t, _ = fresh_2pl () in
  let a = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.write t a ~obj:1 (bytes "a")));
  Twopl.abort t a;
  let b = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.write t b ~obj:1 (bytes "b")));
  ignore (ok_2pl (Twopl.commit t b));
  Helpers.check_bytes "no effect from aborted" "b" (Twopl.value t ~obj:1)

let test_2pl_crash_recovery_work () =
  let t, _ = fresh_2pl () in
  let a = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.read t a ~obj:1));
  ignore (ok_2pl (Twopl.write t a ~obj:2 (bytes "a")));
  let b = Twopl.begin_ t in
  ignore (ok_2pl (Twopl.write t b ~obj:3 (bytes "b")));
  Twopl.crash t;
  Alcotest.(check bool) "down" false (Twopl.is_up t);
  let stats = Twopl.recover t in
  Alcotest.(check bool) "locks cleared" true (stats.Twopl.locks_cleared >= 3);
  Alcotest.(check int) "both rolled back" 2 stats.Twopl.txns_rolled_back;
  Alcotest.(check bool) "up again" true (Twopl.is_up t);
  (* In-flight writes were lost with their transactions. *)
  Alcotest.(check int) "obj 2 clean" 0 (Bytes.length (Twopl.value t ~obj:2))

let test_2pl_crash_mid_commit_replayed () =
  let t, _ = fresh_2pl () in
  let a = Twopl.begin_ t in
  for obj = 1 to 6 do
    ignore (ok_2pl (Twopl.write t a ~obj (bytes (Printf.sprintf "v%d" obj))))
  done;
  (match Twopl.crash_mid_commit t a with Ok () -> () | Error _ -> Alcotest.fail "denied");
  Alcotest.(check bool) "down" false (Twopl.is_up t);
  (* Atomicity is violated until recovery replays the intentions list. *)
  let stats = Twopl.recover t in
  Alcotest.(check int) "six entries replayed" 6 stats.Twopl.intentions_replayed;
  for obj = 1 to 6 do
    Helpers.check_bytes (Printf.sprintf "obj %d" obj) (Printf.sprintf "v%d" obj)
      (Twopl.value t ~obj)
  done

(* {2 Timestamp ordering (SWALLOW-style)} *)

let ok_ts = function
  | Ok v -> v
  | Error `Late_read -> Alcotest.fail "late read"

let ok_ts_w = function
  | Ok v -> v
  | Error (`Late_write rts) -> Alcotest.failf "late write (rts %d)" rts

let test_ts_simple_txn () =
  let t = Tsorder.create () in
  let txn = Tsorder.begin_ t in
  ignore (ok_ts (Tsorder.read t txn ~obj:1));
  ok_ts_w (Tsorder.write t txn ~obj:1 (bytes "hello"));
  ok_ts_w (Tsorder.commit t txn);
  Helpers.check_bytes "committed" "hello" (Tsorder.value t ~obj:1)

let test_ts_timestamps_monotonic () =
  let t = Tsorder.create () in
  let a = Tsorder.begin_ t and b = Tsorder.begin_ t in
  Alcotest.(check bool) "ordered" true (Tsorder.timestamp_of a < Tsorder.timestamp_of b)

let test_ts_late_write_aborts () =
  let t = Tsorder.create () in
  let old_txn = Tsorder.begin_ t in
  let new_txn = Tsorder.begin_ t in
  (* The newer transaction reads first; the older one's write is late. *)
  ignore (ok_ts (Tsorder.read t new_txn ~obj:1));
  (match Tsorder.write t old_txn ~obj:1 (bytes "too late") with
  | Error (`Late_write rts) -> Alcotest.(check int) "killer rts" (Tsorder.timestamp_of new_txn) rts
  | Ok () -> Alcotest.fail "late write accepted");
  Tsorder.abort t old_txn;
  ok_ts_w (Tsorder.commit t new_txn)

let test_ts_read_your_own_writes () =
  let t = Tsorder.create () in
  let txn = Tsorder.begin_ t in
  ok_ts_w (Tsorder.write t txn ~obj:1 (bytes "mine"));
  Helpers.check_bytes "buffered read" "mine" (ok_ts (Tsorder.read t txn ~obj:1));
  Tsorder.abort t txn;
  Alcotest.(check int) "abort leaves nothing" 0 (Bytes.length (Tsorder.value t ~obj:1))

let test_ts_old_reader_sees_old_version () =
  let t = Tsorder.create () in
  let old_reader = Tsorder.begin_ t in
  let writer = Tsorder.begin_ t in
  ok_ts_w (Tsorder.write t writer ~obj:1 (bytes "new value"));
  ok_ts_w (Tsorder.commit t writer);
  (* The old reader's timestamp predates the write: multiversion order
     serves it the old (empty) state instead of aborting. *)
  Alcotest.(check int) "old state" 0 (Bytes.length (ok_ts (Tsorder.read t old_reader ~obj:1)));
  Alcotest.(check int) "two versions retained" 2 (Tsorder.versions_retained t ~obj:1)

let test_ts_commit_revalidates () =
  let t = Tsorder.create () in
  let w = Tsorder.begin_ t in
  ok_ts_w (Tsorder.write t w ~obj:1 (bytes "draft"));
  (* A later transaction reads the state the buffered write would
     supersede, after our write but before our commit. *)
  let r = Tsorder.begin_ t in
  ignore (ok_ts (Tsorder.read t r ~obj:1));
  (match Tsorder.commit t w with
  | Error (`Late_write _) -> ()
  | Ok () -> Alcotest.fail "commit must revalidate");
  Alcotest.(check bool) "writer dead" false (Tsorder.is_active w)

let test_ts_truncate_history () =
  let t = Tsorder.create () in
  for i = 1 to 5 do
    let txn = Tsorder.begin_ t in
    ok_ts_w (Tsorder.write t txn ~obj:1 (bytes (string_of_int i)));
    ok_ts_w (Tsorder.commit t txn)
  done;
  Alcotest.(check int) "six versions (incl. initial)" 6 (Tsorder.versions_retained t ~obj:1);
  Tsorder.truncate_history t ~keep:2;
  Alcotest.(check int) "truncated" 2 (Tsorder.versions_retained t ~obj:1);
  Helpers.check_bytes "latest survives" "5" (Tsorder.value t ~obj:1)

let test_ts_serial_equivalence_of_committed () =
  (* Random mix; committed transactions must be equivalent to timestamp
     order. With single-object writes, the final value must be the one
     written by the highest committed timestamp. *)
  let t = Tsorder.create () in
  let rng = Afs_util.Xrng.create 5 in
  let highest = ref 0 in
  for _ = 1 to 50 do
    let txn = Tsorder.begin_ t in
    let ts = Tsorder.timestamp_of txn in
    let obj = Afs_util.Xrng.int rng 3 in
    let outcome =
      match Tsorder.read t txn ~obj with
      | Error `Late_read -> Error ()
      | Ok _ -> (
          match Tsorder.write t txn ~obj (bytes (string_of_int ts)) with
          | Error (`Late_write _) -> Error ()
          | Ok () -> ( match Tsorder.commit t txn with Ok () -> Ok () | Error _ -> Error ()))
    in
    (match outcome with
    | Ok () when obj = 0 -> if ts > !highest then highest := ts
    | _ -> Tsorder.abort t txn)
  done;
  if !highest > 0 then
    Helpers.check_bytes "highest committed ts wins" (string_of_int !highest)
      (Tsorder.value t ~obj:0)

let () =
  Alcotest.run "baselines"
    [
      ( "twopl",
        [
          quick "simple txn" test_2pl_simple_txn;
          quick "writes buffered" test_2pl_writes_buffered_until_commit;
          quick "readers share" test_2pl_readers_share;
          quick "iwrite excludes iwrite" test_2pl_iwrite_excludes_iwrite;
          quick "iwrite compatible with readers" test_2pl_iwrite_compatible_with_readers_until_commit;
          quick "reader vs intention-write" test_2pl_reader_blocked_by_commit_lock;
          quick "vulnerable locks prodded" test_2pl_vulnerable_lock_prodded;
          quick "abort releases" test_2pl_abort_releases;
          quick "crash recovery work" test_2pl_crash_recovery_work;
          quick "mid-commit crash replayed" test_2pl_crash_mid_commit_replayed;
        ] );
      ( "tsorder",
        [
          quick "simple txn" test_ts_simple_txn;
          quick "timestamps monotonic" test_ts_timestamps_monotonic;
          quick "late write aborts" test_ts_late_write_aborts;
          quick "read your own writes" test_ts_read_your_own_writes;
          quick "old reader served old version" test_ts_old_reader_sees_old_version;
          quick "commit revalidates" test_ts_commit_revalidates;
          quick "truncate history" test_ts_truncate_history;
          quick "serial equivalence" test_ts_serial_equivalence_of_committed;
        ] );
    ]
