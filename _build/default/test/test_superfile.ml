open Afs_core
module P = Afs_util.Pagepath

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok
let path = Helpers.path

let setup () =
  let _, srv = Helpers.fresh_server () in
  let fa = ok (Server.create_file srv ~data:(bytes "A0") ()) in
  let fb = ok (Server.create_file srv ~data:(bytes "B0") ()) in
  let fc = ok (Server.create_file srv ~data:(bytes "C0") ()) in
  let sf = ok (Superfile.make srv ~subfiles:[ fa; fb; fc ] ~data:(bytes "super") ()) in
  (srv, fa, fb, fc, sf)

let current_root srv f =
  let cur = ok (Server.current_version srv f) in
  Helpers.str (ok (Server.read_page srv cur P.root))

(* {2 Construction} *)

let test_make_and_subfiles () =
  let srv, fa, fb, fc, sf = setup () in
  let subs = ok (Superfile.subfiles srv sf) in
  Alcotest.(check int) "three sub-files" 3 (List.length subs);
  List.iter2
    (fun expected got ->
      Alcotest.(check bool) "sub-file cap matches" true (Afs_util.Capability.equal expected got))
    [ fa; fb; fc ] subs;
  Alcotest.(check bool) "is superfile" true (Superfile.is_superfile srv sf)

let test_plain_file_is_not_superfile () =
  let _, srv = Helpers.fresh_server () in
  let f = ok (Server.create_file srv ()) in
  Alcotest.(check bool) "no sub-files" false (Superfile.is_superfile srv f)

(* {2 The locking rules (§5.3)} *)

let test_touched_subfile_locked_out () =
  let srv, fa, _, _, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  let _ = ok (Superfile.touch_subfile u ~index:0) in
  (match Server.create_version srv fa with
  | Error (Errors.Locked_out { port }) ->
      Alcotest.(check int) "lock holds updater's port" (Superfile.port_of u) port
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "inner lock ignored");
  ok (Superfile.abort u)

let test_untouched_subfile_remains_updatable () =
  let srv, _, fb, _, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  let _ = ok (Superfile.touch_subfile u ~index:0) in
  (* fb (index 1) was not visited: full concurrency remains. *)
  let v = ok (Server.create_version srv fb) in
  ok (Server.write_page srv v P.root (bytes "B1"));
  ok (Server.commit srv v);
  Alcotest.(check string) "committed during super update" "B1" (current_root srv fb);
  ok (Superfile.abort u)

let test_second_super_update_locked_out () =
  let srv, _, _, _, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  (match Superfile.begin_update srv sf with
  | Error (Errors.Locked_out _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "top lock ignored");
  ok (Superfile.abort u);
  (* After abort the super-file is free again. *)
  let u2 = ok (Superfile.begin_update srv sf) in
  ok (Superfile.abort u2)

let test_commit_applies_to_all_touched () =
  let srv, fa, _, fc, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  let va = ok (Superfile.touch_subfile u ~index:0) in
  let vc = ok (Superfile.touch_subfile u ~index:2) in
  ok (Server.write_page srv va P.root (bytes "A1"));
  ok (Server.write_page srv vc P.root (bytes "C1"));
  ok (Superfile.commit u);
  Alcotest.(check string) "A updated" "A1" (current_root srv fa);
  Alcotest.(check string) "C updated" "C1" (current_root srv fc);
  (* Locks are gone: both sub-files and the super-file accept updates. *)
  let v = ok (Server.create_version srv fa) in
  ok (Server.abort_version srv v);
  let u2 = ok (Superfile.begin_update srv sf) in
  ok (Superfile.abort u2)

let test_atomicity_across_subfiles () =
  (* Until the super commit, neither sub-file shows the new state; after
     it, both do. *)
  let srv, fa, _, fc, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  let va = ok (Superfile.touch_subfile u ~index:0) in
  let vc = ok (Superfile.touch_subfile u ~index:2) in
  ok (Server.write_page srv va P.root (bytes "A1"));
  ok (Server.write_page srv vc P.root (bytes "C1"));
  Alcotest.(check string) "A still old" "A0" (current_root srv fa);
  Alcotest.(check string) "C still old" "C0" (current_root srv fc);
  ok (Superfile.commit u);
  Alcotest.(check string) "A new" "A1" (current_root srv fa);
  Alcotest.(check string) "C new" "C1" (current_root srv fc)

let test_touch_same_index_idempotent () =
  let srv, _, _, _, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  let v1 = ok (Superfile.touch_subfile u ~index:1) in
  let v2 = ok (Superfile.touch_subfile u ~index:1) in
  Alcotest.(check bool) "same version" true (Afs_util.Capability.equal v1 v2);
  ok (Superfile.abort u)

let test_abort_releases_everything () =
  let srv, fa, _, _, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  let va = ok (Superfile.touch_subfile u ~index:0) in
  ok (Server.write_page srv va P.root (bytes "discarded"));
  ok (Superfile.abort u);
  Alcotest.(check string) "A unchanged" "A0" (current_root srv fa);
  let v = ok (Server.create_version srv fa) in
  ok (Server.write_page srv v P.root (bytes "A-after"));
  ok (Server.commit srv v);
  Alcotest.(check string) "A updatable" "A-after" (current_root srv fa)

let test_sequential_super_updates () =
  let srv, fa, _, _, sf = setup () in
  for i = 1 to 3 do
    let u = ok (Superfile.begin_update srv sf) in
    let va = ok (Superfile.touch_subfile u ~index:0) in
    ok (Server.write_page srv va P.root (bytes (Printf.sprintf "A%d" i)));
    ok (Superfile.commit u)
  done;
  Alcotest.(check string) "last update visible" "A3" (current_root srv fa)

(* {2 Crash recovery (§5.3)} *)

let test_crash_before_commit_cleared () =
  let srv, fa, _, _, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  let va = ok (Superfile.touch_subfile u ~index:0) in
  ok (Server.write_page srv va P.root (bytes "lost")) ;
  Superfile.crash_holder u;
  (match ok (Superfile.recover_abandoned srv sf) with
  | Superfile.Cleared -> ()
  | r ->
      Alcotest.failf "expected Cleared, got %s"
        (match r with
        | Superfile.No_lock -> "No_lock"
        | Superfile.Holder_alive _ -> "Holder_alive"
        | Superfile.Finished _ -> "Finished"
        | Superfile.Cleared -> "Cleared"));
  Alcotest.(check string) "A unchanged" "A0" (current_root srv fa);
  (* Everything is unlocked again. *)
  let u2 = ok (Superfile.begin_update srv sf) in
  let _ = ok (Superfile.touch_subfile u2 ~index:0) in
  ok (Superfile.abort u2)

let test_crash_after_commit_finished_by_waiter () =
  let srv, fa, _, fc, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  let va = ok (Superfile.touch_subfile u ~index:0) in
  let vc = ok (Superfile.touch_subfile u ~index:2) in
  ok (Server.write_page srv va P.root (bytes "A1"));
  ok (Server.write_page srv vc P.root (bytes "C1"));
  (* Commit the super version only — the crash happens before the descent
     that commits the sub-files. *)
  ok (Server.commit srv (Superfile.super_version u));
  Superfile.crash_holder u;
  (* The sub-files still show old state and fa is still inner-locked. *)
  Alcotest.(check string) "A old pre-recovery" "A0" (current_root srv fa);
  (match ok (Superfile.recover_abandoned srv sf) with
  | Superfile.Finished n -> Alcotest.(check int) "two sub-commits finished" 2 n
  | Superfile.Cleared -> Alcotest.fail "expected Finished, got Cleared"
  | Superfile.No_lock -> Alcotest.fail "expected Finished, got No_lock"
  | Superfile.Holder_alive _ -> Alcotest.fail "holder should be dead");
  Alcotest.(check string) "A finished" "A1" (current_root srv fa);
  Alcotest.(check string) "C finished" "C1" (current_root srv fc)

let test_recover_live_holder_untouched () =
  let srv, _, _, _, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  (match ok (Superfile.recover_abandoned srv sf) with
  | Superfile.Holder_alive port -> Alcotest.(check int) "port" (Superfile.port_of u) port
  | _ -> Alcotest.fail "live holder must not be recovered");
  ok (Superfile.abort u)

let test_recover_no_lock () =
  let srv, _, _, _, sf = setup () in
  match ok (Superfile.recover_abandoned srv sf) with
  | Superfile.No_lock -> ()
  | _ -> Alcotest.fail "expected No_lock"

let test_inner_waiter_ascends () =
  let srv, fa, _, _, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  let _ = ok (Superfile.touch_subfile u ~index:0) in
  Superfile.crash_holder u;
  (* A client blocked on fa's inner lock ascends to the super-file and
     recovers there. *)
  (match ok (Superfile.recover_inner_waiter srv fa) with
  | Superfile.Cleared -> ()
  | _ -> Alcotest.fail "expected Cleared via ascent");
  let v = ok (Server.create_version srv fa) in
  ok (Server.abort_version srv v)

let test_dead_inner_lock_cleared_by_create_version () =
  (* Even without explicit recovery, a dead inner lock does not block
     version creation (§5.3: locks of crashed transactions are void). *)
  let srv, fa, _, _, sf = setup () in
  let u = ok (Superfile.begin_update srv sf) in
  let _ = ok (Superfile.touch_subfile u ~index:0) in
  Superfile.crash_holder u;
  match Server.create_version srv fa with
  | Ok v -> ok (Server.abort_version srv v)
  | Error e -> Alcotest.failf "dead lock blocked update: %s" (Errors.to_string e)

(* {2 Soft locks on small files (§5.3 hints)} *)

let test_top_lock_hint_respected () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let ports = Server.ports srv in
  let hint_port = Ports.fresh ports in
  let v = ok (Server.create_version ~updater_port:hint_port srv f) in
  (* A cautious large update honours the hint... *)
  (match Server.create_version ~respect_hints:true srv f with
  | Error (Errors.Locked_out { port }) -> Alcotest.(check int) "hint port" hint_port port
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "hint ignored despite respect_hints");
  (* ...but an ordinary optimistic update proceeds regardless. *)
  let v2 = ok (Server.create_version srv f) in
  ok (Server.abort_version srv v2);
  ok (Server.abort_version srv v)

let test_dead_hint_ignored () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let ports = Server.ports srv in
  let hint_port = Ports.fresh ports in
  let v = ok (Server.create_version ~updater_port:hint_port srv f) in
  ok (Server.abort_version srv v);
  Ports.kill ports hint_port;
  match Server.create_version ~respect_hints:true srv f with
  | Ok v2 -> ok (Server.abort_version srv v2)
  | Error e -> Alcotest.failf "dead hint blocked update: %s" (Errors.to_string e)

let test_nested_superfiles () =
  (* A super-file whose sub-files are themselves super-files: Figure 2's
     arbitrary nesting, with inner-lock recovery ascending two levels. *)
  let _, srv = Helpers.fresh_server () in
  let leaves = List.init 4 (fun i -> ok (Server.create_file srv ~data:(bytes (Printf.sprintf "leaf%d" i)) ())) in
  let mid_a =
    ok (Superfile.make srv ~subfiles:[ List.nth leaves 0; List.nth leaves 1 ] ())
  in
  let mid_b =
    ok (Superfile.make srv ~subfiles:[ List.nth leaves 2; List.nth leaves 3 ] ())
  in
  let top = ok (Superfile.make srv ~subfiles:[ mid_a; mid_b ] ~data:(bytes "top") ()) in
  Alcotest.(check int) "top has two subs" 2 (List.length (ok (Superfile.subfiles srv top)));
  (* Update through the top: touch mid_a, then within it touch leaf 0. *)
  let u = ok (Superfile.begin_update srv top) in
  let _mid_a_version = ok (Superfile.touch_subfile u ~index:0) in
  (* mid_a is now inner-locked; a direct update of mid_a as a super-file
     is refused. *)
  (match Superfile.begin_update srv mid_a with
  | Error (Errors.Locked_out _) -> ()
  | Ok _ -> Alcotest.fail "nested super-file not locked"
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
  (* mid_b and its leaves are untouched: fully updatable. *)
  let v = ok (Server.create_version srv (List.nth leaves 2)) in
  ok (Server.abort_version srv v);
  ok (Superfile.commit u);
  (* After the top commit, everything is unlocked again. *)
  let u2 = ok (Superfile.begin_update srv mid_a) in
  ok (Superfile.abort u2)

let test_nested_crash_recovery_ascends_two_levels () =
  let _, srv = Helpers.fresh_server () in
  let leafs = List.init 2 (fun i -> ok (Server.create_file srv ~data:(bytes (Printf.sprintf "L%d" i)) ())) in
  let mid = ok (Superfile.make srv ~subfiles:leafs ()) in
  let top = ok (Superfile.make srv ~subfiles:[ mid ] ()) in
  let u = ok (Superfile.begin_update srv top) in
  let _ = ok (Superfile.touch_subfile u ~index:0) in
  Superfile.crash_holder u;
  (* A waiter blocked on mid's inner lock ascends to the TOP super-file
     and recovers there. *)
  (match ok (Superfile.recover_inner_waiter srv mid) with
  | Superfile.Cleared -> ()
  | _ -> Alcotest.fail "expected Cleared via two-level ascent");
  let u2 = ok (Superfile.begin_update srv mid) in
  ok (Superfile.abort u2)

let test_path_reads_through_superfile () =
  (* The super-file's page tree can be read like any version: its refs
     lead to sub-file version pages (Figure 2's tree of trees). *)
  let srv, _, _, _, sf = setup () in
  let cur = ok (Server.current_version srv sf) in
  let info = ok (Server.page_info srv cur P.root) in
  Alcotest.(check int) "three refs" 3 info.Server.nrefs;
  (* Reading through ref 1 lands on sub-file B's version page data. *)
  Helpers.check_bytes "B's root data" "B0" (ok (Server.read_page srv cur (path [ 1 ])))

let () =
  Alcotest.run "superfile"
    [
      ( "construction",
        [
          quick "make and subfiles" test_make_and_subfiles;
          quick "plain file is not superfile" test_plain_file_is_not_superfile;
          quick "tree of trees readable" test_path_reads_through_superfile;
          quick "nested super-files" test_nested_superfiles;
          quick "nested crash recovery" test_nested_crash_recovery_ascends_two_levels;
        ] );
      ( "locking",
        [
          quick "touched sub-file locked out" test_touched_subfile_locked_out;
          quick "untouched sub-file updatable" test_untouched_subfile_remains_updatable;
          quick "second super update locked out" test_second_super_update_locked_out;
          quick "commit applies to all touched" test_commit_applies_to_all_touched;
          quick "atomic across sub-files" test_atomicity_across_subfiles;
          quick "touch idempotent" test_touch_same_index_idempotent;
          quick "abort releases everything" test_abort_releases_everything;
          quick "sequential super updates" test_sequential_super_updates;
        ] );
      ( "crash recovery",
        [
          quick "crash before commit: cleared" test_crash_before_commit_cleared;
          quick "crash after commit: finished" test_crash_after_commit_finished_by_waiter;
          quick "live holder untouched" test_recover_live_holder_untouched;
          quick "no lock" test_recover_no_lock;
          quick "inner waiter ascends" test_inner_waiter_ascends;
          quick "dead inner lock cleared" test_dead_inner_lock_cleared_by_create_version;
        ] );
      ( "soft locks",
        [
          quick "hint respected" test_top_lock_hint_respected;
          quick "dead hint ignored" test_dead_hint_ignored;
        ] );
    ]
