open Afs_core
open Afs_files

let quick = Helpers.quick
let ok = Helpers.ok
let bytes = Helpers.bytes
let str = Helpers.str

let setup ?(chunk = 8) () =
  let _, srv = Helpers.fresh_server () in
  let cl = Client.connect srv in
  let f = ok (Linear.create cl ~chunk ()) in
  (srv, cl, f)

let check_contents msg f expected =
  Alcotest.(check string) msg expected (str (ok (Linear.read_all f)))

let test_empty_file () =
  let _, _, f = setup () in
  Alcotest.(check int) "length 0" 0 (ok (Linear.length f));
  Alcotest.(check int) "read empty" 0 (Bytes.length (ok (Linear.read_all f)))

let test_append_and_read () =
  let _, _, f = setup () in
  let off1 = ok (Linear.append f (bytes "hello ")) in
  let off2 = ok (Linear.append f (bytes "world")) in
  Alcotest.(check int) "first at 0" 0 off1;
  Alcotest.(check int) "second after first" 6 off2;
  Alcotest.(check int) "length" 11 (ok (Linear.length f));
  check_contents "contents" f "hello world"

let test_write_spanning_chunks () =
  let _, _, f = setup ~chunk:4 () in
  ok (Linear.write f ~off:0 (bytes "0123456789abcdef"));
  check_contents "4 chunks" f "0123456789abcdef";
  (* Overwrite across a chunk boundary. *)
  ok (Linear.write f ~off:2 (bytes "XXXX"));
  check_contents "boundary overwrite" f "01XXXX6789abcdef"

let test_partial_reads () =
  let _, _, f = setup ~chunk:4 () in
  ok (Linear.write f ~off:0 (bytes "0123456789"));
  Alcotest.(check string) "middle" "2345" (str (ok (Linear.read f ~off:2 ~len:4)));
  Alcotest.(check string) "clipped at eof" "89" (str (ok (Linear.read f ~off:8 ~len:10)));
  Alcotest.(check string) "past eof" "" (str (ok (Linear.read f ~off:50 ~len:4)))

let test_sparse_write_zero_fills () =
  let _, _, f = setup ~chunk:4 () in
  ok (Linear.write f ~off:0 (bytes "ab"));
  ok (Linear.write f ~off:10 (bytes "z"));
  Alcotest.(check int) "length" 11 (ok (Linear.length f));
  let all = str (ok (Linear.read_all f)) in
  Alcotest.(check string) "gap is zeros" "ab\000\000\000\000\000\000\000\000z" all

let test_truncate_shrink () =
  let _, _, f = setup ~chunk:4 () in
  ok (Linear.write f ~off:0 (bytes "0123456789"));
  ok (Linear.truncate f ~len:7);
  Alcotest.(check int) "length" 7 (ok (Linear.length f));
  check_contents "shrunk" f "0123456";
  (* Extending after a shrink must not resurrect old bytes. *)
  ok (Linear.truncate f ~len:10);
  check_contents "re-extended zeros" f "0123456\000\000\000"

let test_truncate_to_zero () =
  let _, _, f = setup ~chunk:4 () in
  ok (Linear.write f ~off:0 (bytes "payload"));
  ok (Linear.truncate f ~len:0);
  Alcotest.(check int) "empty" 0 (ok (Linear.length f));
  ok (Linear.append f (bytes "fresh")) |> ignore;
  check_contents "usable after" f "fresh"

let test_reopen () =
  let _, cl, f = setup ~chunk:4 () in
  ok (Linear.write f ~off:0 (bytes "persistent"));
  let f2 = ok (Linear.of_capability cl (Linear.capability f)) in
  Alcotest.(check int) "chunk recovered" 4 (Linear.chunk f2);
  check_contents "contents via reopen" f2 "persistent"

let test_reopen_rejects_non_linear () =
  let _, srv = Helpers.fresh_server () in
  let cl = Client.connect srv in
  let plain = ok (Client.create_file cl ~data:(bytes "not linear") ()) in
  match Linear.of_capability cl plain with
  | Error (Errors.Store_failure _) -> ()
  | Ok _ -> Alcotest.fail "accepted a non-linear file"
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)

let test_concurrent_disjoint_writes_merge () =
  (* Two clients overwrite different chunks of the same file: the page-
     level OCC merges them. *)
  let srv, _, f = setup ~chunk:4 () in
  let cl = Client.connect srv in
  ignore cl;
  ok (Linear.write f ~off:0 (bytes "aaaabbbbcccc"));
  let cap = Linear.capability f in
  let va = ok (Server.create_version srv cap) in
  let vb = ok (Server.create_version srv cap) in
  (* Simulate the two txns' page writes directly (chunk 1 vs chunk 2). *)
  ok (Server.write_page srv va (Helpers.path [ 1 ]) (bytes "BBBB"));
  ok (Server.write_page srv vb (Helpers.path [ 2 ]) (bytes "CCCC"));
  ok (Server.commit srv va);
  ok (Server.commit srv vb);
  check_contents "both merged" f "aaaaBBBBCCCC"

let test_versions_give_snapshots () =
  let srv, _, f = setup ~chunk:4 () in
  ok (Linear.write f ~off:0 (bytes "before"));
  let snapshot_block = ok (Server.current_block_of_file srv (Linear.capability f)) in
  ok (Linear.write f ~off:0 (bytes "after!"));
  check_contents "current" f "after!";
  (* The superseded committed version still reads the old bytes. *)
  let old_cap = ok (Server.version_of_block srv snapshot_block) in
  Helpers.check_bytes "snapshot first chunk" "befo"
    (ok (Server.read_page srv old_cap (Helpers.path [ 0 ])))

let test_large_file_many_chunks () =
  let _, _, f = setup ~chunk:16 () in
  let payload = Bytes.init 1000 (fun i -> Char.chr (32 + (i mod 90))) in
  ok (Linear.write f ~off:0 payload);
  Alcotest.(check int) "length" 1000 (ok (Linear.length f));
  Alcotest.(check string) "roundtrip" (Bytes.to_string payload) (str (ok (Linear.read_all f)));
  Alcotest.(check string) "random slice"
    (String.sub (Bytes.to_string payload) 123 77)
    (str (ok (Linear.read f ~off:123 ~len:77)))

(* Property: a random sequence of writes/truncates matches a Bytes model. *)
let prop_matches_model =
  QCheck2.Test.make ~name:"linear file matches byte-array model" ~count:60
    ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
    QCheck2.Gen.(int_range 1 100000)
    (fun seed ->
      let rng = Afs_util.Xrng.create seed in
      let _, srv = Helpers.fresh_server () in
      let cl = Client.connect srv in
      let f = ok (Linear.create cl ~chunk:(1 + Afs_util.Xrng.int rng 7) ()) in
      let model = ref Bytes.empty in
      let model_write off data =
        let new_len = max (Bytes.length !model) (off + Bytes.length data) in
        let m = Bytes.make new_len '\000' in
        Bytes.blit !model 0 m 0 (Bytes.length !model);
        Bytes.blit data 0 m off (Bytes.length data);
        model := m
      in
      let model_truncate len =
        let m = Bytes.make len '\000' in
        Bytes.blit !model 0 m 0 (min len (Bytes.length !model));
        model := m
      in
      for _ = 1 to 15 do
        match Afs_util.Xrng.int rng 3 with
        | 0 ->
            let off = Afs_util.Xrng.int rng 40 in
            let data = Afs_util.Xrng.int rng 20 in
            let payload = Bytes.init data (fun i -> Char.chr (65 + ((off + i) mod 26))) in
            ok (Linear.write f ~off payload);
            model_write off payload
        | 1 ->
            let payload = Bytes.make (Afs_util.Xrng.int rng 10) 'q' in
            let off = ok (Linear.append f payload) in
            if off <> Bytes.length !model then Alcotest.fail "append offset mismatch";
            model_write off payload
        | _ ->
            let len = Afs_util.Xrng.int rng 50 in
            ok (Linear.truncate f ~len);
            model_truncate len
      done;
      str (ok (Linear.read_all f)) = Bytes.to_string !model
      && ok (Linear.length f) = Bytes.length !model)

let () =
  Alcotest.run "linear"
    [
      ( "basics",
        [
          quick "empty file" test_empty_file;
          quick "append and read" test_append_and_read;
          quick "write spanning chunks" test_write_spanning_chunks;
          quick "partial reads" test_partial_reads;
          quick "sparse writes zero-fill" test_sparse_write_zero_fills;
          quick "truncate shrink" test_truncate_shrink;
          quick "truncate to zero" test_truncate_to_zero;
          quick "reopen" test_reopen;
          quick "reopen rejects non-linear" test_reopen_rejects_non_linear;
          quick "large file" test_large_file_many_chunks;
        ] );
      ( "concurrency",
        [
          quick "disjoint writes merge" test_concurrent_disjoint_writes_merge;
          quick "versions are snapshots" test_versions_give_snapshots;
        ] );
      ( "properties", [ QCheck_alcotest.to_alcotest prop_matches_model ] );
    ]
