(* Ablations of design choices DESIGN.md calls out. *)

open Exp_util
module Server = Afs_core.Server
module Store = Afs_core.Store
module Cache = Afs_core.Cache
module Gc = Afs_core.Gc
module Pagestore = Afs_core.Pagestore
module P = Afs_util.Pagepath
module Xrng = Afs_util.Xrng

let ok_str = function Ok v -> v | Error msg -> failwith msg

(* A1 — the §5.4 flag cache: keep each committed version's write set in
   server memory so repeated validations never re-read page trees. *)
let a1 () =
  banner "a1-flag-cache" "Cache validation with and without the server flag cache"
    "§5.4 (last paragraph): servers can cache the concurrency-control administration";
  let npages = 128 in
  let intervening = 32 in
  let setup () =
    let store, srv, io = counting_server () in
    ignore store;
    let f = file_with_pages srv npages in
    let basis = ok (Server.current_block_of_file srv f) in
    let rng = Xrng.create 3 in
    for _ = 1 to intervening do
      let v = ok (Server.create_version srv f) in
      ok (Server.write_page srv v (P.of_list [ Xrng.int rng npages ]) (bytes "x"));
      ok (Server.commit srv v)
    done;
    ok (Pagestore.flush (Server.pagestore srv));
    Pagestore.drop_volatile (Server.pagestore srv);
    (srv, f, basis, io)
  in
  let row label flag_cache =
    let srv, f, basis, io = setup () in
    let validations = 20 in
    let r0, _ = io () in
    for _ = 1 to validations do
      Pagestore.drop_volatile (Server.pagestore srv);
      ignore (ok (Cache.server_validate ?flag_cache srv ~file:f ~basis_block:basis))
    done;
    let r1, _ = io () in
    [ label; string_of_int validations;
      f1 (float_of_int (r1 - r0) /. float_of_int validations) ]
  in
  table [ "configuration"; "validations"; "store reads per validation" ]
    [
      row "no flag cache (walk page trees)" None;
      row "flag cache (write sets memoised)" (Some (Cache.Flag_cache.create ()));
    ];
  note "with the flag cache, repeat validations only re-read the chain of version pages;";
  note "the first validation populates the cache (committed versions never change)"

(* A2 — garbage collection on/off: space growth and the cost of the
   collector itself. *)
let a2 () =
  banner "a2-gc" "Space growth with and without the garbage collector" "abstract, §5.1";
  let rounds = 400 in
  let run ~gc_every =
    let store = Store.memory () in
    let srv = Server.create store in
    let f = file_with_pages srv 16 in
    let rng = Xrng.create 17 in
    let peak = ref 0 in
    let gc_freed = ref 0 in
    for i = 1 to rounds do
      let v = ok (Server.create_version srv f) in
      (* Reads create shadow copies the GC later re-shares. *)
      (match Server.read_page srv v (P.of_list [ Xrng.int rng 16 ]) with
      | Ok _ -> ()
      | Error _ -> ());
      ok (Server.write_page srv v (P.of_list [ Xrng.int rng 16 ]) (bytes (string_of_int i)));
      ok (Server.commit srv v);
      if gc_every > 0 && i mod gc_every = 0 then begin
        let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 4; reshare = true } srv) in
        gc_freed := !gc_freed + stats.Gc.blocks_freed
      end;
      let used = List.length (ok_str (store.Store.list_blocks ())) in
      if used > !peak then peak := used
    done;
    let final = List.length (ok_str (store.Store.list_blocks ())) in
    [
      (if gc_every = 0 then "no GC" else Printf.sprintf "GC every %d commits" gc_every);
      string_of_int !peak;
      string_of_int final;
      string_of_int !gc_freed;
    ]
  in
  table [ "configuration"; "peak blocks"; "final blocks"; "blocks reclaimed" ]
    [ run ~gc_every:0; run ~gc_every:64; run ~gc_every:8 ];
  note "%d commits on a 16-page file: without collection the store grows without bound" rounds;
  note "(every update shadows its path); frequent collection keeps it near the live set"

(* A3 — the write-back page cache (§5.4 'need not be write-through'). *)
let a3 () =
  banner "a3-write-back" "Write-back vs write-through page handling" "§5.4";
  let run ~cache =
    let store, io = Store.counting (Store.memory ()) in
    let srv = Server.create ~page_cache:cache store in
    let f = file_with_pages srv 8 in
    let r0, w0 = io () in
    for i = 1 to 50 do
      let v = ok (Server.create_version srv f) in
      (* Each update rewrites the same page four times before commit. *)
      for _ = 1 to 4 do
        ok (Server.write_page srv v (P.of_list [ i mod 8 ]) (bytes (string_of_int i)))
      done;
      ok (Server.commit srv v)
    done;
    let r1, w1 = io () in
    [ (if cache then "write-back (flush at commit)" else "write-through");
      string_of_int (r1 - r0); string_of_int (w1 - w0) ]
  in
  table [ "configuration"; "store reads"; "store writes" ]
    [ run ~cache:true; run ~cache:false ];
  note "deferring page writes to the pre-commit flush coalesces rewrites of hot pages;";
  note "uncommitted versions lost in a crash were going to be redone anyway (§5.4.1)"
