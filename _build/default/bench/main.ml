(* The experiment harness: regenerates every figure- and claim-level
   result catalogued in DESIGN.md / EXPERIMENTS.md.

   Run everything:        dune exec bench/main.exe
   One experiment:        dune exec bench/main.exe -- --only c1-occ-vs-locking
   Add Bechamel micros:   dune exec bench/main.exe -- --bechamel
   List experiments:      dune exec bench/main.exe -- --list *)

let experiments =
  [
    ("f1-hierarchy", Figures.f1);
    ("f2-tree-of-trees", Figures.f2);
    ("f3-page-codec", Figures.f3);
    ("f4-version-chain", Figures.f4);
    ("f5-commit-fastpath", Figures.f5);
    ("f6-concurrent-commit", Figures.f6);
    ("c1-occ-vs-locking", Claims.c1);
    ("c2-crash-recovery", Claims.c2);
    ("c3-cache-validation", Claims.c3);
    ("c4-serialise-cost", Claims.c4);
    ("c5-stable-storage", Claims.c5);
    ("c6-superfile-locking", Claims.c6);
    ("c7-write-once", Claims.c7);
    ("c8-starvation", Claims.c8);
    ("c9-one-page-files", Claims.c9);
    ("a1-flag-cache", Ablations.a1);
    ("a2-gc", Ablations.a2);
    ("a3-write-back", Ablations.a3);
  ]

let () =
  let only = ref [] in
  let list_only = ref false in
  let bechamel = ref false in
  let speclist =
    [
      ( "--only",
        Arg.String (fun s -> only := s :: !only),
        "ID  run only the experiment with this id (repeatable)" );
      ("--list", Arg.Set list_only, "  list experiment ids and exit");
      ("--bechamel", Arg.Set bechamel, "  also run the Bechamel micro-benchmarks");
    ]
  in
  Arg.parse speclist
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "main.exe [--list] [--only ID]... [--bechamel]";
  if !list_only then List.iter (fun (id, _) -> print_endline id) experiments
  else begin
    let selected =
      if !only = [] then experiments
      else
        List.filter_map
          (fun id ->
            match List.assoc_opt id experiments with
            | Some f -> Some (id, f)
            | None ->
                Printf.eprintf "unknown experiment %S (use --list)\n" id;
                exit 1)
          (List.rev !only)
    in
    Printf.printf
      "Amoeba File Service reproduction — experiment harness (%d experiments)\n"
      (List.length selected);
    Printf.printf "All times are SIMULATED unless marked as Bechamel wall-clock.\n";
    List.iter (fun (_, f) -> f ()) selected;
    if !bechamel then Micro.run ();
    Printf.printf "\n%s\ndone.\n" (String.make 78 '=')
  end
