bench/micro.ml: Afs_core Afs_util Analyze Array Bechamel Benchmark Bytes Exp_util Hashtbl Instance List Measure Printf Staged String Test Time Toolkit
