bench/exp_util.ml: Afs_core Afs_util Array Bytes List Printf String
