bench/claims.ml: Afs_baseline Afs_block Afs_core Afs_disk Afs_rpc Afs_sim Afs_stable Afs_util Afs_workload Array Bytes Driver Exp_util Fmt List Printf Sut Workload
