bench/ablations.ml: Afs_core Afs_util Exp_util List Printf
