bench/main.ml: Ablations Arg Claims Figures List Micro Printf String
