bench/main.mli:
