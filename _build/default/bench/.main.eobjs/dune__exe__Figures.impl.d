bench/figures.ml: Afs_block Afs_core Afs_disk Afs_naming Afs_util Array Bytes Exp_util Fmt List Printf
