(* The paper's §6 motivating example: an airline reservation system.

   Run with:  dune exec examples/airline_booking.exe

   "Changes in an airline reservation system for flights from San
   Francisco to Los Angeles do not conflict with changes to reservations
   on flights from Amsterdam to London."

   Sixteen simulated booking agents hammer a shared file server over the
   simulated network. Each flight is a small file, each fare class a
   page. Because most bookings touch different flights, the optimistic
   mechanism commits almost everything on the first try — and the run
   prints exactly how rare redos are, plus the proof that no seat was
   ever double-sold. *)

module Engine = Afs_sim.Engine
module Server = Afs_core.Server
module Store = Afs_core.Store
module Remote = Afs_rpc.Remote
open Afs_workload

let ok = function Ok v -> v | Error e -> failwith (Afs_core.Errors.to_string e)

let () =
  let params =
    { Airline.default with flights = 24; classes = 4; seats_per_class = 500 }
  in
  let engine = Engine.create () in
  let store = Store.memory () in
  let server = Server.create store in
  let shape =
    {
      Workload.small_updates with
      nfiles = params.Airline.flights;
      pages_per_file = params.Airline.classes;
    }
  in
  let files = ok (Workload.setup_pages server shape ~initial:(Airline.initial_page params)) in
  let host = Remote.host ~latency_ms:2.0 engine ~name:"reservations" server in
  let sut = Sut.afs_remote (Remote.connect [ host ]) ~fallback:server ~files in

  Printf.printf "airline reservation system: %d flights x %d classes, %d seats each\n"
    params.Airline.flights params.Airline.classes params.Airline.seats_per_class;
  Printf.printf "16 agents booking for 30 simulated seconds...\n\n";

  let config =
    { Driver.default_config with clients = 16; duration_ms = 30_000.0; think_ms = 20.0 }
  in
  let report = Driver.run engine config sut ~gen:(Airline.generator params) in

  print_endline Driver.header_row;
  print_endline (Driver.report_row report);

  let total_before =
    params.Airline.flights * params.Airline.classes * params.Airline.seats_per_class
  in
  let remaining = Airline.total_seats sut params in
  let booked = total_before - remaining in
  let redos = report.Driver.attempts - report.Driver.committed - report.Driver.given_up in
  Printf.printf "\nseats sold: %d (inventory %d -> %d)\n" booked total_before remaining;
  Printf.printf "redos caused by conflicts: %d (%.2f%% of transactions)\n" redos
    (100.0 *. float_of_int redos /. float_of_int (max 1 report.Driver.committed));
  Printf.printf "double-sold seats: %d (inventory is exact, by serialisability)\n"
    (if booked <= report.Driver.committed then 0 else booked - report.Driver.committed);

  (* Show the per-flight spread: hot flights absorb contention locally. *)
  Printf.printf "\nseats remaining per flight (flight 0 is the most popular):\n";
  for flight = 0 to min 7 (params.Airline.flights - 1) do
    let left = ref 0 in
    for cls = 0 to params.Airline.classes - 1 do
      left := !left + Airline.decode_seats (sut.Sut.read_page flight cls)
    done;
    Printf.printf "  flight %2d: %4d seats left\n" flight !left
  done;
  Printf.printf "  ... (%d more flights)\n" (max 0 (params.Airline.flights - 8))
