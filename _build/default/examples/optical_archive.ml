(* An archival store on write-once optical media (§6).

   Run with:  dune exec examples/optical_archive.exe

   "Optical disks show great promise for the future... The version
   mechanism, coupled with a cache in which uncommitted files are kept
   until just before commit seems an ideal file store for optical disks."

   The archive keeps every revision of every document forever — which is
   exactly what a WORM platter does anyway. Data pages are etched once;
   only version pages (whose commit references are updated in place) live
   on a small magnetic index, the way Figure 2 keeps the top of the
   system tree on magnetic media. Old revisions are retrieved by walking
   the family tree, and diffs between revisions ride the structural
   sharing. *)

open Afs_core
module P = Afs_util.Pagepath

let ok = function Ok v -> v | Error e -> failwith (Errors.to_string e)
let bytes = Bytes.of_string

let () =
  let store, worm_stats = Store.worm_hybrid ~blocks:100_000 ~block_size:32768 () in
  let srv = Server.create store in
  let client = Client.connect srv in

  (* An archived ledger: one page per quarter. *)
  let ledger = ok (Client.create_file client ~data:(bytes "ACME ledger") ()) in
  ok
    (Client.update client ledger (fun txn ->
         let open Errors in
         let rec add i =
           if i >= 4 then Ok ()
           else
             let* _ =
               Client.Txn.insert txn ~parent:P.root ~index:i
                 ~data:(bytes (Printf.sprintf "Q%d: opening balance 0" (i + 1)))
                 ()
             in
             add (i + 1)
         in
         add 0));

  (* Years of quarterly revisions. *)
  for year = 2021 to 2025 do
    for quarter = 0 to 3 do
      ok
        (Client.update client ledger (fun txn ->
             Client.Txn.write txn (P.of_list [ quarter ])
               (bytes (Printf.sprintf "Q%d %d: balance %d" (quarter + 1) year (1000 * year)))))
    done
  done;

  let chain = ok (Server.committed_chain srv ledger) in
  Printf.printf "archive holds %d revisions of the ledger, all readable forever:\n"
    (List.length chain);

  (* Retrieve an old year's state directly from the platter. *)
  let revision_of_year year =
    (* 2 setup commits, then 4 per year starting 2021. *)
    List.nth chain (2 + (4 * (year - 2021 + 1)) - 1)
  in
  let show_year year =
    let cap = ok (Server.version_of_block srv (revision_of_year year)) in
    Printf.printf "  as of end %d: %s\n" year
      (Bytes.to_string (ok (Server.read_page srv cap (P.of_list [ 3 ]))))
  in
  show_year 2021;
  show_year 2023;
  show_year 2025;

  (* Diff two distant revisions: the shared structure makes it cheap. *)
  let r2023 = revision_of_year 2023 and r2024 = revision_of_year 2024 in
  let changes =
    ok (Serialise.diff_trees (Server.pagestore srv) ~old_version:r2023 ~new_version:r2024)
  in
  Printf.printf "\nchanges during 2024 (structural diff): %s\n"
    (String.concat ", "
       (List.map
          (fun (p, c) ->
            P.to_string p
            ^ match c with Serialise.Data_changed -> " (data)" | Serialise.Structure_changed -> " (shape)")
          changes));

  (* What it cost the media. *)
  ok (Pagestore.flush (Server.pagestore srv));
  let s = worm_stats () in
  Printf.printf "\nmedia usage after %d commits:\n" (List.length chain);
  Printf.printf "  optical platter: %d blocks etched (never rewritten)\n" s.Store.bulk_writes;
  Printf.printf "  magnetic index:  %d blocks (the version pages), %d rewrites absorbed\n"
    s.Store.index_blocks s.Store.index_writes;
  Printf.printf
    "\nno garbage collection configured: on WORM media, history IS the storage model.\n"
