(* Client page caches without unsolicited messages (§5.4).

   Run with:  dune exec examples/caching.exe

   A client keeps pages of the most recent version it has seen; before
   using them it asks the server which are stale — one request, cost
   proportional to what actually changed. For a file nobody else touches,
   validation is a null operation forever. Nothing is ever pushed from
   server to client. *)

open Afs_core
module P = Afs_util.Pagepath

let ok = function Ok v -> v | Error e -> failwith (Errors.to_string e)
let bytes = Bytes.of_string

let () =
  let store = Store.memory () in
  let srv = Server.create store in

  (* A 32-page file. *)
  let file = ok (Server.create_file srv ()) in
  let v = ok (Server.create_version srv file) in
  for i = 0 to 31 do
    ignore
      (ok
         (Server.insert_page srv v ~parent:P.root ~index:i
            ~data:(bytes (Printf.sprintf "page-%02d" i)) ()))
  done;
  ok (Server.commit srv v);

  let flag_cache = Cache.Flag_cache.create () in
  let reader = Client.connect ~flag_cache srv in
  let writer = Client.connect srv in

  (* Warm the reader's cache. *)
  for i = 0 to 31 do
    ignore (ok (Client.read_cached reader file (P.of_list [ i ])))
  done;
  let hits name = Afs_util.Stats.Counter.get (Client.counters reader) name in
  Printf.printf "after warming: hits=%d misses=%d\n" (hits "cache.hits") (hits "cache.misses");

  (* Re-read everything: all hits, one validation each (a null op). *)
  for i = 0 to 31 do
    ignore (ok (Client.read_cached reader file (P.of_list [ i ])))
  done;
  Printf.printf "after re-read: hits=%d misses=%d  (file unshared -> validation is free)\n"
    (hits "cache.hits") (hits "cache.misses");

  (* Another client changes exactly one page. *)
  ok (Client.update writer file (fun txn -> Client.Txn.write txn (P.of_list [ 7 ]) (bytes "page-07'")));
  Printf.printf "\nwriter changed page 7\n";

  (* The reader's next validation discards exactly that page. *)
  let c = Cache.create srv in
  ignore c;
  let i_before = hits "cache.misses" in
  for i = 0 to 31 do
    ignore (ok (Client.read_cached reader file (P.of_list [ i ])))
  done;
  let new_misses = hits "cache.misses" - i_before in
  Printf.printf "reader re-validated: %d page re-fetched (31 served from cache)\n" new_misses;
  Printf.printf "fresh content: %s\n"
    (Bytes.to_string (ok (Client.read_cached reader file (P.of_list [ 7 ]))));

  (* Validation cost is proportional to change volume, not file size: the
     server walked the one intervening version's write set (1 path). *)
  let basis = ok (Server.current_block_of_file srv file) in
  ok (Client.update writer file (fun txn -> Client.Txn.write txn (P.of_list [ 3 ]) (bytes "x")));
  ok (Client.update writer file (fun txn -> Client.Txn.write txn (P.of_list [ 9 ]) (bytes "y")));
  let validation = ok (Cache.server_validate srv ~file ~basis_block:basis) in
  Printf.printf
    "\nexplicit validation two commits later: %d versions walked, %d write-set paths examined\n"
    validation.Cache.versions_walked validation.Cache.pages_examined;
  Printf.printf "invalid paths: %s\n"
    (String.concat " " (List.map P.to_string validation.Cache.invalid));
  Printf.printf "\n(the server keeps per-version write sets in its flag cache: %d entries)\n"
    (Cache.Flag_cache.entries flag_cache)
