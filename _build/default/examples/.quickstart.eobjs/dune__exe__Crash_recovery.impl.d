examples/crash_recovery.ml: Afs_core Afs_disk Afs_rpc Afs_sim Afs_stable Afs_util Bytes Errors Fmt Pagestore Ports Printf Server Store
