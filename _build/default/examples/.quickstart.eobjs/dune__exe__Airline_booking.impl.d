examples/airline_booking.ml: Afs_core Afs_rpc Afs_sim Afs_workload Airline Driver Printf Sut Workload
