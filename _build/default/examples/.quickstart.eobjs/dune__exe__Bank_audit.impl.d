examples/bank_audit.ml: Afs_core Afs_util Array Bytes Errors Printf Server Store Superfile
