examples/caching.ml: Afs_core Afs_util Bytes Cache Client Errors List Printf Server Store String
