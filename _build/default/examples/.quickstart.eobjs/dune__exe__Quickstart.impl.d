examples/quickstart.ml: Afs_core Afs_util Bytes Client Errors Fmt Gc List Printf Server Store
