examples/optical_archive.ml: Afs_core Afs_util Bytes Client Errors List Pagestore Printf Serialise Server Store String
