examples/kv_store.ml: Afs_core Afs_files Afs_util Btree Bytes Client Errors Fmt Gc Linear List Printf Server Store String
