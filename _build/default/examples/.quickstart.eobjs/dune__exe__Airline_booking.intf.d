examples/airline_booking.mli:
