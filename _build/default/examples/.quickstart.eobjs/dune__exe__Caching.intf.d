examples/caching.mli:
