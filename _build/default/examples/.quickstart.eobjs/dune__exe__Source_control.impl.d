examples/source_control.ml: Afs_core Afs_naming Afs_util Bytes Client Directory Errors Fmt Gc List Printf Serialise Server Store String
