examples/quickstart.mli:
