examples/optical_archive.mli:
