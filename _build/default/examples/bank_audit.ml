(* Super-files and the §5.3 locking mechanism: a bank with an auditor.

   Run with:  dune exec examples/bank_audit.exe

   Each branch is a small file (accounts = pages) living under one bank
   super-file. Transfers are one-branch optimistic updates. The auditor
   periodically takes a super-file update across every branch — the top
   and inner locks give it an exclusive, consistent snapshot while
   branches it has not reached yet keep committing transfers.

   The run also crashes one auditor mid-audit to show §5.3 recovery: the
   waiter finds the dead port and clears the abandoned locks; no rollback
   happens anywhere. *)

open Afs_core
module P = Afs_util.Pagepath
module Xrng = Afs_util.Xrng

let ok = function Ok v -> v | Error e -> failwith (Errors.to_string e)
let bytes = Bytes.of_string

let branches = 4
let accounts = 8
let initial_balance = 1000

let encode n = bytes (string_of_int n)
let decode b = int_of_string (Bytes.to_string b)

let read_balance srv branch acct =
  let cur = ok (Server.current_version srv branch) in
  decode (ok (Server.read_page srv cur (P.of_list [ acct ])))

let transfer srv branch ~from_acct ~to_acct ~amount =
  let rec attempt n =
    if n > 16 then failwith "transfer starved"
    else
      match Server.create_version srv branch with
      | Error (Errors.Locked_out _) -> `Blocked_by_audit
      | Error e -> failwith (Errors.to_string e)
      | Ok v -> (
          let get p = decode (ok (Server.read_page srv v (P.of_list [ p ]))) in
          let put p x = ok (Server.write_page srv v (P.of_list [ p ]) (encode x)) in
          put from_acct (get from_acct - amount);
          put to_acct (get to_acct + amount);
          match Server.commit srv v with
          | Ok () -> `Done
          | Error Errors.Conflict -> attempt (n + 1)
          | Error e -> failwith (Errors.to_string e))
  in
  attempt 1

let () =
  let store = Store.memory () in
  let srv = Server.create store in
  let rng = Xrng.create 2026 in

  (* Build the branches and the bank super-file over them. *)
  let branch_files =
    Array.init branches (fun _ ->
        let f = ok (Server.create_file srv ()) in
        let v = ok (Server.create_version srv f) in
        for a = 0 to accounts - 1 do
          ignore
            (ok
               (Server.insert_page srv v ~parent:P.root ~index:a
                  ~data:(encode initial_balance) ()))
        done;
        ok (Server.commit srv v);
        f)
  in
  let bank = ok (Superfile.make srv ~subfiles:(Array.to_list branch_files) ~data:(bytes "bank") ()) in
  let expected_total = branches * accounts * initial_balance in
  Printf.printf "bank: %d branches x %d accounts, %d total\n" branches accounts expected_total;

  (* Interleave transfers with an audit. *)
  Printf.printf "\n-- audit holding branch 0 and 1, transfers elsewhere --\n";
  let audit = ok (Superfile.begin_update srv bank) in
  let audited = ref 0 in
  let audit_branch idx =
    let v = ok (Superfile.touch_subfile audit ~index:idx) in
    for a = 0 to accounts - 1 do
      audited := !audited + decode (ok (Server.read_page srv v (P.of_list [ a ])))
    done
  in
  audit_branch 0;
  audit_branch 1;
  (* Transfers on audited branches are blocked; on the rest they flow. *)
  (match transfer srv branch_files.(0) ~from_acct:0 ~to_acct:1 ~amount:10 with
  | `Blocked_by_audit -> Printf.printf "transfer on audited branch 0: blocked (inner lock)\n"
  | `Done -> Printf.printf "UNEXPECTED: transfer slipped past the audit\n");
  let moved = ref 0 in
  for _ = 1 to 50 do
    let b = 2 + Xrng.int rng (branches - 2) in
    let from_acct = Xrng.int rng accounts in
    let to_acct = (from_acct + 1 + Xrng.int rng (accounts - 1)) mod accounts in
    match transfer srv branch_files.(b) ~from_acct ~to_acct ~amount:(1 + Xrng.int rng 20) with
    | `Done -> incr moved
    | `Blocked_by_audit -> ()
  done;
  Printf.printf "transfers on unaudited branches during the audit: %d committed\n" !moved;
  audit_branch 2;
  audit_branch 3;
  ok (Superfile.commit audit);
  Printf.printf "audit read total: %d (consistent snapshot of its lock epoch)\n" !audited;

  (* Verify conservation after everything. *)
  let total = ref 0 in
  Array.iter
    (fun f ->
      for a = 0 to accounts - 1 do
        total := !total + read_balance srv f a
      done)
    branch_files;
  Printf.printf "grand total now: %d (expected %d) -> %s\n" !total expected_total
    (if !total = expected_total then "conserved" else "BROKEN");

  (* Crash an auditor mid-flight and recover per §5.3. *)
  Printf.printf "\n-- auditor crashes mid-audit --\n";
  let doomed = ok (Superfile.begin_update srv bank) in
  let _ = ok (Superfile.touch_subfile doomed ~index:0) in
  Superfile.crash_holder doomed;
  (match transfer srv branch_files.(0) ~from_acct:0 ~to_acct:1 ~amount:5 with
  | `Done -> Printf.printf "dead inner lock ignored: transfer proceeds immediately\n"
  | `Blocked_by_audit -> begin
      match ok (Superfile.recover_abandoned srv bank) with
      | Superfile.Cleared -> Printf.printf "waiter cleared the abandoned locks\n"
      | _ -> Printf.printf "unexpected recovery outcome\n"
    end);
  (match ok (Superfile.recover_abandoned srv bank) with
  | Superfile.Cleared -> Printf.printf "recovery: abandoned top lock cleared, no rollback\n"
  | Superfile.No_lock -> Printf.printf "recovery: nothing left to clean\n"
  | Superfile.Finished n -> Printf.printf "recovery: finished %d sub-commits\n" n
  | Superfile.Holder_alive _ -> Printf.printf "recovery: holder alive?\n");
  let next_audit = ok (Superfile.begin_update srv bank) in
  ok (Superfile.abort next_audit);
  Printf.printf "new audit can start: the bank is healthy\n"
