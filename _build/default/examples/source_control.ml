(* A source-code control system on the version mechanism (§2 cites
   Rochkind's SCCS as a target application).

   Run with:  dune exec examples/source_control.exe

   The committed-version chain IS the history: no deltas to manage, no
   lock files. Each "checkin" is an atomic update; old revisions stay
   readable until pruned; two developers editing different source files
   inside one repository never interfere, and editing the same file is
   caught as a conflict, like a merge conflict — except detected by the
   file service itself. *)

open Afs_core
open Afs_naming
module P = Afs_util.Pagepath

let ok = function Ok v -> v | Error e -> failwith (Errors.to_string e)
let bytes = Bytes.of_string

let checkin client file content =
  ok (Client.write_whole_file client file (bytes content))

let history srv file =
  List.map
    (fun block ->
      let cap = ok (Server.version_of_block srv block) in
      Bytes.to_string (ok (Server.read_page srv cap P.root)))
    (ok (Server.committed_chain srv file))

let () =
  let store = Store.memory () in
  let srv = Server.create store in
  let client = Client.connect srv in

  (* The repository is a directory mapping filenames to file capabilities:
     Figure 1's hierarchy, used as an SCCS. *)
  let repo = ok (Directory.create client ()) in
  let add name initial =
    let f = ok (Client.create_file client ~data:(bytes initial) ()) in
    ok (Directory.enter repo name f);
    f
  in
  let main_ml = add "main.ml" "let () = ()\n" in
  let lib_ml = add "lib.ml" "let answer = 41\n" in

  Printf.printf "repository files: %s\n"
    (String.concat ", " (ok (Directory.list_names repo)));

  (* Development happens. *)
  checkin client lib_ml "let answer = 42\n";
  checkin client main_ml "let () = print_int Lib.answer\n";
  checkin client main_ml "let () = print_endline (string_of_int Lib.answer)\n";

  Printf.printf "\nhistory of main.ml (%d revisions):\n" (List.length (history srv main_ml));
  List.iteri (fun i c -> Printf.printf "  r%d: %s" i c) (history srv main_ml);

  (* Blame-style access to an old revision. *)
  let r1 = List.nth (ok (Server.committed_chain srv main_ml)) 1 in
  let r1cap = ok (Server.version_of_block srv r1) in
  Printf.printf "\ncheckout of r1: %s"
    (Bytes.to_string (ok (Server.read_page srv r1cap P.root)));

  (* Two developers, disjoint files: both checkins commit with no locks
     and no coordination. *)
  Printf.printf "\n-- concurrent checkins on different files --\n";
  let dev_a = ok (Server.create_version srv main_ml) in
  let dev_b = ok (Server.create_version srv lib_ml) in
  ok (Server.write_page srv dev_a P.root (bytes "(* A's version *)\n"));
  ok (Server.write_page srv dev_b P.root (bytes "let answer = 43 (* B *)\n"));
  ok (Server.commit srv dev_a);
  ok (Server.commit srv dev_b);
  Printf.printf "both committed: %s and %s"
    (Bytes.to_string (ok (Client.read_current client main_ml P.root)))
    (Bytes.to_string (ok (Client.read_current client lib_ml P.root)));

  (* The same file: second committer gets a conflict, exactly like a
     version-control merge conflict. *)
  Printf.printf "\n-- concurrent checkins on the SAME file --\n";
  let dev_a = ok (Server.create_version srv main_ml) in
  let dev_b = ok (Server.create_version srv main_ml) in
  let base = ok (Server.read_page srv dev_a P.root) in
  ok (Server.write_page srv dev_a P.root (Bytes.cat base (bytes "(* A again *)\n")));
  let base_b = ok (Server.read_page srv dev_b P.root) in
  ok (Server.write_page srv dev_b P.root (Bytes.cat base_b (bytes "(* B again *)\n")));
  ok (Server.commit srv dev_a);
  (match Server.commit srv dev_b with
  | Error Errors.Conflict ->
      Printf.printf "dev B: conflict reported — re-fetch and redo (a 'merge')\n"
  | Ok () -> Printf.printf "UNEXPECTED: lost update\n"
  | Error e -> failwith (Errors.to_string e));

  (* Structural diff between revisions: shared subtrees are skipped, so
     diffing costs what changed, like a proper VCS. *)
  Printf.printf "\n-- diff r0..r2 of main.ml --\n";
  (match ok (Server.committed_chain srv main_ml) with
  | r0 :: _ :: r2 :: _ ->
      let changes =
        ok (Serialise.diff_trees (Server.pagestore srv) ~old_version:r0 ~new_version:r2)
      in
      List.iter
        (fun (p, c) ->
          Printf.printf "  %s %s\n" (P.to_string p)
            (match c with
            | Serialise.Data_changed -> "content changed"
            | Serialise.Structure_changed -> "layout changed"))
        changes
  | _ -> ());

  (* Retention policy: keep the last 3 revisions of everything. *)
  let before = List.length (history srv main_ml) in
  let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 3; reshare = true } srv) in
  Printf.printf "\ngc: %s\n" (Fmt.str "%a" Gc.pp_stats stats);
  Printf.printf "main.ml history: %d -> %d revisions\n" before
    (List.length (history srv main_ml));
  Printf.printf "latest still: %s" (Bytes.to_string (ok (Client.read_current client main_ml P.root)))
