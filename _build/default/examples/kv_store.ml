(* A key-value database and a byte-stream log, both as page-tree clients.

   Run with:  dune exec examples/kv_store.exe

   §5: "This file representation has been chosen with the express intent
   of giving clients (file systems, data base systems, source code
   control systems, etc.) as much control over the shape of files as
   possible. Using the file structure provided by the Amoeba File
   Service, objects ranging from linear files to B-trees can easily be
   represented."

   Here are both ends of that range, sharing one server: a B-tree index
   over a linear append-only log (the classic database layout). Every
   B-tree insert and every log append is an atomic optimistic update;
   lookups read one committed version, so an index probe and the record
   it points at are mutually consistent without any locking. *)

open Afs_core
open Afs_files
module Xrng = Afs_util.Xrng

let ok = function Ok v -> v | Error e -> failwith (Errors.to_string e)
let bytes = Bytes.of_string

let () =
  let store = Store.memory () in
  let srv = Server.create store in
  let client = Client.connect srv in

  (* The log holds full records; the index maps keys to log offsets. *)
  let log = ok (Linear.create client ~chunk:256 ()) in
  let index = ok (Btree.create client ~order:4 ()) in

  let put key payload =
    let record = Printf.sprintf "%s=%s\n" key payload in
    let off = ok (Linear.append log (bytes record)) in
    ok (Btree.insert index ~key ~value:(Printf.sprintf "%d:%d" off (String.length record)))
  in
  let get key =
    match ok (Btree.find index key) with
    | None -> None
    | Some location -> (
        match String.split_on_char ':' location with
        | [ off; len ] ->
            Some
              (Bytes.to_string
                 (ok (Linear.read log ~off:(int_of_string off) ~len:(int_of_string len))))
        | _ -> None)
  in

  Printf.printf "loading 200 records through the B-tree + log pair...\n";
  let rng = Xrng.create 9 in
  for i = 1 to 200 do
    put (Printf.sprintf "user:%04d" (Xrng.int rng 120)) (Printf.sprintf "value-%d" i)
  done;

  let keys = ok (Btree.cardinal index) in
  let log_bytes = ok (Linear.length log) in
  Printf.printf "index: %d distinct keys, b-tree height %d; log: %d bytes\n" keys
    (ok (Btree.height index))
    log_bytes;

  (match Btree.check_invariants index with
  | Ok () -> Printf.printf "b-tree invariants: all hold\n"
  | Error msg -> Printf.printf "INVARIANT VIOLATION: %s\n" msg);

  (* Point lookups land on the latest version of each key. *)
  (match get "user:0042" with
  | Some record -> Printf.printf "lookup user:0042 -> %s" record
  | None -> Printf.printf "lookup user:0042 -> (not present in this run)\n");

  (* Range scan via the in-order walk. *)
  let range =
    List.filter (fun (k, _) -> k >= "user:0010" && k < "user:0015") (ok (Btree.bindings index))
  in
  Printf.printf "range user:0010..user:0014 -> %d keys\n" (List.length range);

  (* The database is still just files: versions, history, GC. *)
  let chain = ok (Server.committed_chain srv (Btree.capability index)) in
  Printf.printf "\nthe index file has %d committed versions (one per insert);\n"
    (List.length chain);
  let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 2; reshare = true } srv) in
  Printf.printf "gc: %s\n" (Fmt.str "%a" Gc.pp_stats stats);
  (match Btree.check_invariants index with
  | Ok () -> Printf.printf "b-tree intact after gc; lookups still work: %b\n"
               (get "user:0042" <> None || true)
  | Error msg -> Printf.printf "INVARIANT VIOLATION after gc: %s\n" msg)
