(* Quickstart: the file service in five minutes.

   Run with:  dune exec examples/quickstart.exe

   Walks the whole lifecycle: create a file, update it through versions,
   watch the optimistic machinery detect a conflict, and redo the losing
   update — everything on an in-memory store. *)

open Afs_core
module P = Afs_util.Pagepath

let ok = function Ok v -> v | Error e -> failwith (Errors.to_string e)
let bytes = Bytes.of_string
let section title = Printf.printf "\n== %s ==\n" title

let () =
  (* A server needs a store: here the in-memory one. Real deployments use
     Store.of_block_server or Store.of_stable_pair. *)
  let store = Store.memory () in
  let server = Server.create store in

  section "Create a file";
  let file = ok (Server.create_file server ~data:(bytes "hello, Amoeba") ()) in
  Printf.printf "file capability: %s\n" (Fmt.str "%a" Afs_util.Capability.pp file);
  let current = ok (Server.current_version server file) in
  Printf.printf "current contents: %S\n"
    (Bytes.to_string (ok (Server.read_page server current P.root)));

  section "Update through a version";
  (* A version behaves like a private copy of the file: nothing is visible
     to other clients until commit. *)
  let v = ok (Server.create_version server file) in
  ok (Server.write_page server v P.root (bytes "hello, version 2"));
  let p0 = ok (Server.insert_page server v ~parent:P.root ~index:0 ~data:(bytes "a subpage") ()) in
  Printf.printf "inserted page at path %s\n" (P.to_string p0);
  ok (Server.commit server v);
  let current = ok (Server.current_version server file) in
  Printf.printf "after commit: %S / %S\n"
    (Bytes.to_string (ok (Server.read_page server current P.root)))
    (Bytes.to_string (ok (Server.read_page server current p0)));

  section "Concurrent updates that do not conflict";
  (* Two clients update different pages: the Kung & Robinson test passes
     and the merge keeps both. *)
  let va = ok (Server.create_version server file) in
  let vb = ok (Server.create_version server file) in
  ok (Server.write_page server va P.root (bytes "root by client A"));
  ok (Server.write_page server vb p0 (bytes "subpage by client B"));
  ok (Server.commit server va);
  ok (Server.commit server vb);
  let current = ok (Server.current_version server file) in
  Printf.printf "both survive: %S / %S\n"
    (Bytes.to_string (ok (Server.read_page server current P.root)))
    (Bytes.to_string (ok (Server.read_page server current p0)));

  section "A genuine conflict, and the redo loop";
  (* The Client module packages create-version/commit/redo. Both clients
     increment the same counter page: one of them is redone transparently. *)
  let client = Client.connect server in
  let counter = ok (Client.create_file client ~data:(bytes "0") ()) in
  let increment () =
    ok
      (Client.update client counter (fun txn ->
           let open Errors in
           let* v = Client.Txn.read txn P.root in
           let n = int_of_string (Bytes.to_string v) in
           (* Interleave a competing increment on the first attempt to
              force a conflict. *)
           let* () =
             if Client.Txn.attempt txn = 1 then begin
               let rival = ok (Server.create_version server counter) in
               let m =
                 int_of_string (Bytes.to_string (ok (Server.read_page server rival P.root)))
               in
               ok (Server.write_page server rival P.root (bytes (string_of_int (m + 1))));
               ok (Server.commit server rival);
               Ok ()
             end
             else Ok ()
           in
           Client.Txn.write txn P.root (bytes (string_of_int (n + 1)))))
  in
  increment ();
  Printf.printf "counter after one increment + one rival: %S (no update lost)\n"
    (Bytes.to_string (ok (Client.read_current client counter P.root)));
  let counters = Afs_util.Stats.Counter.to_list (Client.counters client) in
  List.iter (fun (k, v) -> Printf.printf "  %-16s %d\n" k v) counters;

  section "History";
  (* Committed versions form the family tree of Figure 4; past states stay
     readable until the garbage collector prunes them. *)
  let chain = ok (Server.committed_chain server file) in
  Printf.printf "file has %d committed versions; oldest readable:\n" (List.length chain);
  let oldest = ok (Server.version_of_block server (List.hd chain)) in
  Printf.printf "  %S\n" (Bytes.to_string (ok (Server.read_page server oldest P.root)));
  let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 2; reshare = true } server) in
  Printf.printf "gc: %s\n" (Fmt.str "%a" Gc.pp_stats stats);
  Printf.printf "\ndone.\n"
