(* Crash-proofness, end to end (§3.1, §5.4.1, §6).

   Run with:  dune exec examples/crash_recovery.exe

   Two file-server processes share one stable-storage pair (two block
   servers, two disks). A client works through simulated RPC. We then
   kill things in escalating order — the primary file server mid-update,
   then one whole disk — and watch the client continue with nothing more
   than a redo of its unfinished update. At no point does any component
   run a rollback, clear a lock table, or replay an intentions list. *)

module Engine = Afs_sim.Engine
module Proc = Afs_sim.Proc
module Media = Afs_disk.Media
module Stable = Afs_stable.Stable_pair
open Afs_core
module Remote = Afs_rpc.Remote
module P = Afs_util.Pagepath

let ok = function Ok v -> v | Error e -> failwith (Errors.to_string e)
let bytes = Bytes.of_string

let () =
  let engine = Engine.create () in
  let pair = Stable.create ~media:Media.magnetic ~blocks:4096 ~block_size:32768 () in
  let store = Store.of_stable_pair pair in
  let ports = Ports.create () in
  let srv1 = Server.create ~seed:11 ~ports store in
  let srv2 = Server.create ~seed:11 ~ports store in
  let host1 =
    Remote.host engine ~name:"afs-1" ~disks:[ Stable.disk pair 0; Stable.disk pair 1 ] srv1
  in
  let host2 =
    Remote.host engine ~name:"afs-2" ~disks:[ Stable.disk pair 0; Stable.disk pair 1 ] srv2
  in
  let conn = Remote.connect [ host1; host2 ] in

  let body () =
    Printf.printf "t=%6.1fms  creating ledger file via server 1\n" (Engine.now engine);
    let f = ok (Remote.create_file conn (bytes "ledger v1")) in
    let v = ok (Remote.create_version conn f) in
    ok (Remote.write_page conn v P.root (bytes "ledger v2"));
    ok (Remote.commit conn v);
    Printf.printf "t=%6.1fms  committed v2\n" (Engine.now engine);

    (* Start an update, then the server dies under it. *)
    let v = ok (Remote.create_version conn f) in
    ok (Remote.write_page conn v P.root (bytes "ledger v3 (in flight)"));
    Printf.printf "t=%6.1fms  update in flight on server 1... crashing server 1\n"
      (Engine.now engine);
    Remote.crash_host host1;

    (* The paper's contract: the client simply redoes the update — against
       the other server, with no waiting for a restore. *)
    (match Remote.commit conn v with
    | Ok () -> Printf.printf "t=%6.1fms  (update survived: cache was flushed)\n" (Engine.now engine)
    | Error _ ->
        Printf.printf "t=%6.1fms  commit failed as expected; redoing on server 2\n"
          (Engine.now engine);
        let v = ok (Remote.create_version conn f) in
        ok (Remote.write_page conn v P.root (bytes "ledger v3 (redone)"));
        ok (Remote.commit conn v));
    let cur = ok (Remote.current_version conn f) in
    Printf.printf "t=%6.1fms  current: %S\n" (Engine.now engine)
      (Bytes.to_string (ok (Remote.read_page conn cur P.root)));

    (* Now lose an entire disk. Stable storage serves from the companion
       and repairs on restart. *)
    Printf.printf "t=%6.1fms  head crash on disk 0 (all contents lost)\n" (Engine.now engine);
    Stable.wipe_and_crash pair 0;
    Pagestore.drop_volatile (Server.pagestore srv2);
    let cur = ok (Remote.current_version conn f) in
    Printf.printf "t=%6.1fms  still serving: %S (from the companion disk)\n" (Engine.now engine)
      (Bytes.to_string (ok (Remote.read_page conn cur P.root)));

    (match (Stable.restart pair 0).Stable.result with
    | Ok repaired ->
        Printf.printf "t=%6.1fms  disk 0 restored by compare-notes: %d blocks repaired\n"
          (Engine.now engine) repaired
    | Error e -> failwith (Fmt.str "%a" Stable.pp_error e));

    (* Updates continued working the whole time. *)
    let v = ok (Remote.create_version conn f) in
    ok (Remote.write_page conn v P.root (bytes "ledger v4 (after disk loss)"));
    ok (Remote.commit conn v);
    let cur = ok (Remote.current_version conn f) in
    Printf.printf "t=%6.1fms  final: %S\n" (Engine.now engine)
      (Bytes.to_string (ok (Remote.read_page conn cur P.root)));
    match Stable.verify_companion_invariant pair with
    | Ok () -> Printf.printf "\nstable-storage invariant holds; recovery work performed: 0 rollbacks,\n0 locks cleared, 0 intentions lists replayed.\n"
    | Error msg -> Printf.printf "INVARIANT VIOLATION: %s\n" msg
  in
  let _ = Proc.spawn ~name:"client" engine body in
  Engine.run engine
