lib/block/block_server.mli: Afs_disk Afs_util Fmt
