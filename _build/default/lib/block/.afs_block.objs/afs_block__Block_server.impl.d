lib/block/block_server.ml: Afs_disk Afs_util Fmt Hashtbl List
