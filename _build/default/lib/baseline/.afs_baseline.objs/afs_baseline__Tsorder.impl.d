lib/baseline/tsorder.ml: Afs_util Bytes Hashtbl List
