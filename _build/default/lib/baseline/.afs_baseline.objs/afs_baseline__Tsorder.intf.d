lib/baseline/tsorder.mli:
