lib/baseline/twopl.ml: Afs_util Bytes Hashtbl List
