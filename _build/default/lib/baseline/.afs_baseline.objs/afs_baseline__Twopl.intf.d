lib/baseline/twopl.mli:
