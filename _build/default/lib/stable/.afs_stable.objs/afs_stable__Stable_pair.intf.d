lib/stable/stable_pair.mli: Afs_disk Fmt
