lib/stable/stable_pair.ml: Afs_disk Afs_util Array Bytes Fmt Hashtbl Int64 Printf
