lib/naming/directory.ml: Afs_core Afs_util Bytes Char Int64 List Printf String
