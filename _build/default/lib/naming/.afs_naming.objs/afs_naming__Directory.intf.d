lib/naming/directory.mli: Afs_core Afs_util
