(** A directory service built {e on top of} the file service — the layered
    storage hierarchy of Figure 1 (directory server above file server
    above block server).

    A directory is an ordinary small file: a fixed set of hash-bucket
    pages under the root, each holding (name, capability) entries. Every
    directory mutation is an atomic optimistic update of one bucket page,
    so concurrent [enter]s of names in different buckets never conflict,
    and lookups ride the client page cache (§5.4). This module contains
    no concurrency control of its own — demonstrating that the file
    service's mechanism is sufficient substrate for higher services. *)

type t

val create : Afs_core.Client.t -> ?buckets:int -> unit -> t Afs_core.Errors.r
(** A fresh directory file with the given bucket count (default 16). *)

val of_capability : Afs_core.Client.t -> Afs_util.Capability.t -> t Afs_core.Errors.r
(** Re-open an existing directory (bucket count is read from the file). *)

val capability : t -> Afs_util.Capability.t
val buckets : t -> int

val enter : t -> string -> Afs_util.Capability.t -> unit Afs_core.Errors.r
(** Bind (or rebind) a name. *)

val lookup : t -> string -> Afs_util.Capability.t option Afs_core.Errors.r
(** Served through the client cache: repeated lookups of a quiet
    directory cost one validation round trip and no page transfer. *)

val remove : t -> string -> bool Afs_core.Errors.r
(** True when the name existed. *)

val list_names : t -> string list Afs_core.Errors.r
(** All bound names, sorted. *)
