lib/workload/sut.mli: Afs_baseline Afs_core Afs_rpc Afs_sim Afs_util
