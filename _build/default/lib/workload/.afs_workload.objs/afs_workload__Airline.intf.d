lib/workload/airline.mli: Sut Workload
