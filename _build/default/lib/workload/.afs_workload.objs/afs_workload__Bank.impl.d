lib/workload/bank.ml: Afs_util Bytes List String Sut
