lib/workload/sut.ml: Afs_baseline Afs_core Afs_rpc Afs_sim Afs_util Array List Option Printf Result
