lib/workload/bank.mli: Sut Workload
