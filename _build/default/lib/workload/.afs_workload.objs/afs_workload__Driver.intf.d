lib/workload/driver.mli: Afs_sim Fmt Sut Workload
