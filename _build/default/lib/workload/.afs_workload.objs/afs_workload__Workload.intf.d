lib/workload/workload.mli: Afs_core Afs_util Sut
