lib/workload/workload.ml: Afs_core Afs_util Array Bytes Char Hashtbl List Sut
