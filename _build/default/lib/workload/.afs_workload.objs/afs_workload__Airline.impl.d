lib/workload/airline.ml: Afs_util Bytes List String Sut
