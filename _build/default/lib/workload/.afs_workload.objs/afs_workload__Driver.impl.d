lib/workload/driver.ml: Afs_sim Afs_util Float Fmt Printf Sut
