(** A branch-office banking workload (the paper's other §2 example: "the
    contents of the bank accounts of a branch office").

    A branch is a file; an account is a page holding a balance. Transfers
    move money between two accounts of one branch (two read-modify-writes)
    and audits read every account. Money conservation is the
    serialisability oracle: any lost or invented money means a
    non-serialisable schedule slipped through. *)

type params = {
  branches : int;
  accounts : int;  (** Pages per branch file. *)
  initial_balance : int;
  audit_fraction : float;
  account_theta : float;  (** Skew towards hot accounts. *)
}

val default : params

val initial_page : params -> bytes
val decode_balance : bytes -> int

val generator : params -> Workload.generator

val total_money : Sut.t -> params -> int

val expected_total : params -> int
(** [branches * accounts * initial_balance]: transfers conserve it. *)
