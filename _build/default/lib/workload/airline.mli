(** The paper's own motivating workload (§6): an airline reservation
    system. "Changes in an airline reservation system for flights from San
    Francisco to Los Angeles do not conflict with changes to reservations
    on flights from Amsterdam to London."

    Each flight is a small file; each fare class is a page holding a seat
    counter. Bookings read-modify-write one counter; availability queries
    read several. Because most bookings touch different flights (or
    different classes), the optimistic mechanism almost never aborts —
    which is precisely the claim the C1 experiment measures. *)

type params = {
  flights : int;
  classes : int;  (** Pages per flight file. *)
  seats_per_class : int;
  booking_fraction : float;  (** Remainder are read-only queries. *)
  flight_theta : float;  (** Popularity skew across flights. *)
}

val default : params

val initial_page : params -> bytes
(** The seat counter every page starts with. *)

val generator : params -> Workload.generator
(** Bookings decrement a seat counter (never below zero); queries read
    every class of one flight. *)

val decode_seats : bytes -> int

val total_seats : Sut.t -> params -> int
(** Sum of all counters in committed state — conserved minus committed
    bookings, which the serialisability tests assert. *)
