lib/files/btree.mli: Afs_core Afs_util
