lib/files/btree.ml: Afs_core Afs_util List Option Printf String
