lib/files/linear.mli: Afs_core Afs_util
