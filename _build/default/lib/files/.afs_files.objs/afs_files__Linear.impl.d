lib/files/linear.ml: Afs_core Afs_util Bytes
