(** Ordinary linear (byte-stream) files on the page-tree API — the "flat
    file server" of Figure 1, §2.1.

    A linear file stores its bytes in fixed-size chunk pages under the
    root; the root's data area holds the metadata (chunk size and
    length). Every mutation is one atomic optimistic update, so
    concurrent writers to disjoint chunks merge and concurrent appends
    conflict-and-redo — without this module containing any concurrency
    control of its own.

    Offsets and lengths are bytes. Reads past end-of-file are clipped;
    writes past end-of-file extend the file with zero bytes. *)

type t

val create :
  Afs_core.Client.t -> ?chunk:int -> unit -> t Afs_core.Errors.r
(** A fresh empty linear file. [chunk] is the bytes-per-page granularity
    (default 4096); it must be positive and fit the store's block size. *)

val of_capability : Afs_core.Client.t -> Afs_util.Capability.t -> t Afs_core.Errors.r
(** Re-open an existing linear file (chunk size read from the metadata). *)

val capability : t -> Afs_util.Capability.t
val chunk : t -> int

val length : t -> int Afs_core.Errors.r

val read : t -> off:int -> len:int -> bytes Afs_core.Errors.r
(** Up to [len] bytes from [off]; shorter at end-of-file; empty beyond
    it. Negative arguments are [Invalid_argument]. *)

val read_all : t -> bytes Afs_core.Errors.r

val write : t -> off:int -> bytes -> unit Afs_core.Errors.r
(** Overwrite (and extend if needed) starting at [off], atomically. A
    sparse gap between old end-of-file and [off] reads as zero bytes. *)

val append : t -> bytes -> int Afs_core.Errors.r
(** Atomically write at end-of-file; returns the offset written at. *)

val truncate : t -> len:int -> unit Afs_core.Errors.r
(** Shorten (or zero-extend) to exactly [len] bytes. *)
