(** An ordered key-value map as a B-tree of pages — the paper's §5 claim
    made concrete: "Using the file structure provided by the Amoeba File
    Service, objects ranging from linear files to B-trees can easily be
    represented. Clients have explicit control over the shape of the page
    tree."

    Every tree node is one page: an interior node's children are the
    page's references (explicit shape control), its separator keys live in
    the page data; leaves hold sorted key-value bindings. Splits use the
    ordinary page operations (insert a sibling page, move child subtrees),
    pre-emptively on the way down, so an insert is a single-pass, single-
    version atomic update. Lookups read one committed version — a
    consistent snapshot for free.

    Concurrency falls out of the file service: inserts into different
    subtrees merge; inserts that split the same node conflict and redo.
    Deletion removes the binding without rebalancing (standard lazy
    deletion); the structure stays a valid search tree. *)

type t

val create : Afs_core.Client.t -> ?order:int -> unit -> t Afs_core.Errors.r
(** [order] is the maximum entries per leaf and maximum children per
    interior node (default 8, minimum 3). *)

val of_capability : Afs_core.Client.t -> Afs_util.Capability.t -> t Afs_core.Errors.r

val capability : t -> Afs_util.Capability.t
val order : t -> int

val insert : t -> key:string -> value:string -> unit Afs_core.Errors.r
(** Insert or replace, atomically. *)

val find : t -> string -> string option Afs_core.Errors.r

val remove : t -> string -> bool Afs_core.Errors.r
(** True when the key was bound. *)

val bindings : t -> (string * string) list Afs_core.Errors.r
(** All bindings in key order (an in-order walk of one snapshot). *)

val cardinal : t -> int Afs_core.Errors.r

val height : t -> int Afs_core.Errors.r
(** Levels from root to leaves (a 1-node tree has height 1). *)

val check_invariants : t -> (unit, string) result
(** Test hook: keys sorted within nodes, separator bounds respected,
    every leaf at the same depth, node populations within [order]. *)
