module Capability = Afs_util.Capability
module Pagepath = Afs_util.Pagepath
module Wire = Afs_util.Wire
module Client = Afs_core.Client
module Server = Afs_core.Server
module Errors = Afs_core.Errors

open Errors

type t = { client : Client.t; cap : Capability.t; chunk : int }

(* {2 Metadata (root page data)} *)

let magic = 0x11EA

let encode_meta ~chunk ~length =
  let w = Wire.Writer.create ~capacity:16 () in
  Wire.Writer.u16 w magic;
  Wire.Writer.varint w chunk;
  Wire.Writer.varint w length;
  Wire.Writer.contents w

let decode_meta data =
  match
    let r = Wire.Reader.of_bytes data in
    if Wire.Reader.u16 r <> magic then Error (Store_failure "not a linear file")
    else begin
      let chunk = Wire.Reader.varint r in
      let length = Wire.Reader.varint r in
      Wire.Reader.expect_end r;
      Ok (chunk, length)
    end
  with
  | result -> result
  | exception Wire.Decode_error msg -> Error (Store_failure ("linear meta: " ^ msg))

(* {2 Open / create} *)

let create client ?(chunk = 4096) () =
  if chunk <= 0 then invalid_arg "Linear.create: chunk must be positive";
  let* cap = Client.create_file client ~data:(encode_meta ~chunk ~length:0) () in
  Ok { client; cap; chunk }

let of_capability client cap =
  let* meta = Client.read_current client cap Pagepath.root in
  let* chunk, _length = decode_meta meta in
  Ok { client; cap; chunk }

let capability t = t.cap
let chunk t = t.chunk

(* {2 Reading: one consistent snapshot = one committed version} *)

let snapshot t =
  let server = Client.server t.client in
  let* version = Server.current_version server t.cap in
  let* meta = Server.read_page server version Pagepath.root in
  let* _chunk, length = decode_meta meta in
  Ok (server, version, length)

let length t =
  let* _, _, length = snapshot t in
  Ok length

(* The stored page may be shorter than the slice wants (sparse tail):
   missing bytes read as zero. *)
let blit_from_page page_data ~page_off ~dst ~dst_off ~len =
  let available = max 0 (Bytes.length page_data - page_off) in
  let n = min len available in
  if n > 0 then Bytes.blit page_data page_off dst dst_off n

let read t ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Linear.read: negative offset or length";
  let* server, version, file_len = snapshot t in
  let len = min len (max 0 (file_len - off)) in
  if len = 0 then Ok Bytes.empty
  else begin
    let out = Bytes.make len '\000' in
    let first_page = off / t.chunk in
    let last_page = (off + len - 1) / t.chunk in
    let rec pages p acc =
      if p > last_page then acc
      else
        let acc =
          let* () = acc in
          let* data = Server.read_page server version (Pagepath.of_list [ p ]) in
          let page_start = p * t.chunk in
          let slice_start = max off page_start in
          let slice_end = min (off + len) (page_start + t.chunk) in
          blit_from_page data ~page_off:(slice_start - page_start) ~dst:out
            ~dst_off:(slice_start - off) ~len:(slice_end - slice_start);
          Ok ()
        in
        pages (p + 1) acc
    in
    let* () = pages first_page (Ok ()) in
    Ok out
  end

let read_all t =
  let* len = length t in
  read t ~off:0 ~len

(* {2 Writing} *)

let pages_for len chunk = (len + chunk - 1) / chunk

(* Grow or trim the chunk-page population to [target] inside the txn. *)
let resize_pages txn ~current ~target =
  if target > current then begin
    let rec add i =
      if i >= target then Ok ()
      else
        let* _ = Client.Txn.insert txn ~parent:Pagepath.root ~index:i () in
        add (i + 1)
    in
    add current
  end
  else begin
    let rec drop i =
      if i <= target then Ok ()
      else
        let* () = Client.Txn.remove txn ~parent:Pagepath.root ~index:(i - 1) in
        drop (i - 1)
    in
    drop current
  end

let write_in_txn txn ~off data =
  let len = Bytes.length data in
  let* meta = Client.Txn.read txn Pagepath.root in
  let* chunk, old_len = decode_meta meta in
  let off = match off with `At o -> o | `End -> old_len in
  let new_len = max old_len (off + len) in
  let* () =
    if new_len <> old_len || pages_for new_len chunk <> pages_for old_len chunk then
      let* () =
        resize_pages txn ~current:(pages_for old_len chunk) ~target:(pages_for new_len chunk)
      in
      Client.Txn.write txn Pagepath.root (encode_meta ~chunk ~length:new_len)
    else Ok ()
  in
  if len = 0 then Ok off
  else begin
    let first_page = off / chunk in
    let last_page = (off + len - 1) / chunk in
    let rec pages p acc =
      if p > last_page then acc
      else
        let acc =
          let* () = acc in
          let path = Pagepath.of_list [ p ] in
          let page_start = p * chunk in
          let slice_start = max off page_start in
          let slice_end = min (off + len) (page_start + chunk) in
          (* Bytes of this page that must survive: up to the written slice
             and (for the last page) after it. *)
          let wanted = min chunk (new_len - page_start) in
          let* old_data = Client.Txn.read txn path in
          let page = Bytes.make wanted '\000' in
          blit_from_page old_data ~page_off:0 ~dst:page ~dst_off:0 ~len:wanted;
          Bytes.blit data (slice_start - off) page (slice_start - page_start)
            (slice_end - slice_start);
          let* () = Client.Txn.write txn path page in
          Ok ()
        in
        pages (p + 1) acc
    in
    let* () = pages first_page (Ok ()) in
    Ok off
  end

let write t ~off data =
  if off < 0 then invalid_arg "Linear.write: negative offset";
  let* _ = Client.update t.client t.cap (fun txn -> write_in_txn txn ~off:(`At off) data) in
  Ok ()

let append t data = Client.update t.client t.cap (fun txn -> write_in_txn txn ~off:`End data)

let truncate t ~len =
  if len < 0 then invalid_arg "Linear.truncate: negative length";
  Client.update t.client t.cap (fun txn ->
      let* meta = Client.Txn.read txn Pagepath.root in
      let* chunk, old_len = decode_meta meta in
      if len = old_len then Ok ()
      else begin
        let* () =
          resize_pages txn ~current:(pages_for old_len chunk) ~target:(pages_for len chunk)
        in
        (* Trim the (new) last page so stale bytes cannot resurface on a
           later extension. *)
        let* () =
          let keep = len mod chunk in
          if len > 0 && keep > 0 && len < old_len then begin
            let path = Pagepath.of_list [ (len - 1) / chunk ] in
            let* old_data = Client.Txn.read txn path in
            let page = Bytes.make keep '\000' in
            blit_from_page old_data ~page_off:0 ~dst:page ~dst_off:0 ~len:keep;
            Client.Txn.write txn path page
          end
          else Ok ()
        in
        Client.Txn.write txn Pagepath.root (encode_meta ~chunk ~length:len)
      end)
