type 'a state = Empty of ('a -> unit) Queue.t | Full of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty (Queue.create ()) }

let try_fill t v =
  match t.state with
  | Full _ -> false
  | Empty waiters ->
      t.state <- Full v;
      Queue.iter (fun wake -> wake v) waiters;
      true

let fill t v = if not (try_fill t v) then invalid_arg "Ivar.fill: already filled"

let is_filled t = match t.state with Full _ -> true | Empty _ -> false

let peek t = match t.state with Full v -> Some v | Empty _ -> None

let read t =
  match t.state with
  | Full v -> v
  | Empty waiters -> Proc.suspend (fun resume -> Queue.add resume waiters)
