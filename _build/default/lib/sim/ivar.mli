(** Write-once synchronisation variables ("ivars").

    The RPC layer pairs each outstanding request with an ivar carrying the
    reply; the client process blocks on {!read} until the server (or the
    crash injector) fills it. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Determine the ivar and wake all readers. Raises [Invalid_argument] if
    already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns false instead of raising when already full. *)

val is_filled : 'a t -> bool

val peek : 'a t -> 'a option

val read : 'a t -> 'a
(** Block the calling process until the ivar is filled; immediate if it
    already is. Must run inside a {!Proc} process. *)
