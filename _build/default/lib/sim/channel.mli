(** Unbounded FIFO channels between simulated processes.

    A server is typically a process looping on {!recv}; clients {!send}
    request records carrying a reply {!Ivar}. Delivery order is FIFO and
    deterministic. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Never blocks (unbounded queue). May be called from inside or outside a
    process. *)

val recv : 'a t -> 'a
(** Block the calling process until a value is available. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val length : 'a t -> int
(** Values queued and not yet received. *)

val clear : 'a t -> 'a list
(** Drop and return all queued values (used by crash injection to discard
    a dead server's inbox). Parked receivers stay parked. *)
