(** Simulated processes: coroutines over the {!Engine} clock, implemented
    with OCaml 5 effect handlers.

    A process is an ordinary OCaml function that may call {!delay},
    {!suspend} and the blocking operations of {!Ivar} and {!Channel}. When
    it blocks, its continuation is parked and the engine moves on; virtual
    time only advances through {!delay} and event scheduling, never through
    real time. *)

exception Killed
(** Raised inside a process that is resumed after {!kill}. *)

type handle
(** Identity of a spawned process. *)

val spawn : ?name:string -> Engine.t -> (unit -> unit) -> handle
(** [spawn engine body] schedules [body] to start at the current virtual
    time. Uncaught exceptions other than {!Killed} escape the engine's
    [run] loop — tests rely on that to surface bugs. *)

val delay : float -> unit
(** Advance virtual time by the given amount. Must be called from inside a
    process; raises [Invalid_argument] otherwise. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the current process; [register resume] is
    called immediately with a one-shot [resume] function that, when
    invoked (typically from another process or an engine event), schedules
    the parked process to continue with the given value. *)

val self_name : unit -> string
(** Name of the running process ("anon" when unnamed); for logs. *)

val kill : handle -> unit
(** Marks the process dead: the next time it would be resumed it raises
    {!Killed} instead, unwinding the coroutine. Used by crash injection. *)

val alive : handle -> bool

val joinable : Engine.t -> ((unit -> unit) -> handle) * (unit -> unit)
(** [let spawn_joined, join_all = joinable engine] returns a spawner that
    tracks completion, and a blocking [join_all] that suspends the calling
    process until every tracked process has finished. *)
