lib/sim/ivar.mli:
