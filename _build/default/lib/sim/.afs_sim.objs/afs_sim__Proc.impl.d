lib/sim/proc.ml: Effect Engine Fun Queue
