lib/sim/engine.mli:
