lib/sim/channel.mli:
