lib/sim/channel.ml: List Proc Queue
