lib/sim/ivar.ml: Proc Queue
