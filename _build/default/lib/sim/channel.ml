type 'a t = { values : 'a Queue.t; receivers : ('a -> unit) Queue.t }

let create () = { values = Queue.create (); receivers = Queue.create () }

let send t v =
  match Queue.take_opt t.receivers with
  | Some wake -> wake v
  | None -> Queue.add v t.values

let recv t =
  match Queue.take_opt t.values with
  | Some v -> v
  | None -> Proc.suspend (fun resume -> Queue.add resume t.receivers)

let try_recv t = Queue.take_opt t.values

let length t = Queue.length t.values

let clear t =
  let drained = List.of_seq (Queue.to_seq t.values) in
  Queue.clear t.values;
  drained
