(** The C/R/W/S/M page-reference flags (paper §5.1, Figure 3).

    Each entry in a page's reference table carries five flags describing
    how the {e referred-to} page has been accessed in this version:

    - [C] — the page was copied and is no longer shared with the version
      this one was based on;
    - [R] — the page's data was read;
    - [W] — the page's data was written;
    - [S] — the page's references were consulted (searched);
    - [M] — the page's references were modified (insert/remove page).

    Invariants (enforced by this module): a page cannot be accessed in any
    way without first being copied, so each of [R], [W], [S], [M] implies
    [C]; and references cannot be modified without being consulted, so [M]
    implies [S]. That leaves exactly 13 legal combinations, which fit in
    four bits — Amoeba packs a reference into 28 bits of block number plus
    these four bits. *)

type t = private { c : bool; r : bool; w : bool; s : bool; m : bool }

val clear : t
(** All flags off: the page is still shared with the base version. *)

val make : ?r:bool -> ?w:bool -> ?s:bool -> ?m:bool -> copied:bool -> unit -> t
(** Raises [Invalid_argument] if the requested combination violates the
    invariants (e.g. [r] without [copied], or [m] without [s]). *)

type access = Read | Write | Search | Modify

val record : t -> access -> t
(** [record t a] returns [t] with the flags implied by access [a] added;
    sets [C] (and [S] for [Modify]) as needed. *)

val is_legal : t -> bool

val all : t list
(** The 13 legal flag states, in encoding order. *)

val to_nibble : t -> int
(** Injective encoding into [0, 12]. *)

val of_nibble : int -> t option
(** Inverse of {!to_nibble}; [None] for values outside [0, 12]. *)

val union : t -> t -> t
(** Least upper bound of two access records (used when folding subtree
    summaries). *)

val equal : t -> t -> bool
val pp : t Fmt.t
