lib/core/serialise.mli: Afs_util Errors Pagestore
