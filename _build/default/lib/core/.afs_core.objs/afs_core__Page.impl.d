lib/core/page.ml: Afs_util Array Bytes Flags Fmt Int64 Printf
