lib/core/errors.mli: Afs_util Fmt
