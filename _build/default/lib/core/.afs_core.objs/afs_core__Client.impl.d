lib/core/client.ml: Afs_util Cache Errors Ports Server
