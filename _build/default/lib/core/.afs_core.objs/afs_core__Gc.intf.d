lib/core/gc.mli: Afs_sim Errors Fmt Hashtbl Server
