lib/core/gc.ml: Afs_sim Errors Flags Fmt Hashtbl List Page Pagestore Server Store
