lib/core/serialise.ml: Afs_util Array Bytes Errors Flags List Page Pagestore Printf Result
