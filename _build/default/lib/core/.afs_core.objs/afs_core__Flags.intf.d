lib/core/flags.mli: Fmt
