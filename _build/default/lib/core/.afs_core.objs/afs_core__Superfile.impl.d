lib/core/superfile.ml: Afs_util Array Bytes Errors Flags List Page Pagestore Ports Server
