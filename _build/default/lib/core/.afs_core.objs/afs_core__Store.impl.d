lib/core/store.ml: Afs_block Afs_disk Afs_stable Bytes Fmt Hashtbl List Printf Result
