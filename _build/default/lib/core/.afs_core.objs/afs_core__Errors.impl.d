lib/core/errors.ml: Afs_util Fmt Result
