lib/core/cache.mli: Afs_util Errors Server
