lib/core/cache.ml: Afs_util Bytes Errors Hashtbl List Option Page Pagestore Serialise Server
