lib/core/client.mli: Afs_util Cache Errors Server
