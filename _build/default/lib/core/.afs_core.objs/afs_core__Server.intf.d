lib/core/server.mli: Afs_util Errors Flags Page Pagestore Ports Store
