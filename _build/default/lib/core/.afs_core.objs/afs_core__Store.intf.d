lib/core/store.mli: Afs_block Afs_disk Afs_stable
