lib/core/pagestore.mli: Errors Page Store
