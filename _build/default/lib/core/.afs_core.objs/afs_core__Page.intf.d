lib/core/page.mli: Afs_util Flags Fmt
