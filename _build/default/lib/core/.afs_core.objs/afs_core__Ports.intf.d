lib/core/ports.mli:
