lib/core/pagestore.ml: Errors Hashtbl List Page Store
