lib/core/superfile.mli: Afs_util Errors Server
