lib/core/flags.ml: Fmt List
