lib/core/server.ml: Afs_util Array Bytes Errors Flags Hashtbl List Option Page Pagestore Ports Result Serialise
