lib/core/ports.ml: Hashtbl
