type t = { live : (int, unit) Hashtbl.t; mutable next : int }

let create () = { live = Hashtbl.create 64; next = 1 }

let fresh t =
  let port = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.live port ();
  port

let kill t port = Hashtbl.remove t.live port

let alive t port = port <> 0 && Hashtbl.mem t.live port
