type entry = { page : Page.t; dirty : bool }

type t = {
  store : Store.t;
  cache_enabled : bool;
  cache : (int, entry) Hashtbl.t;
  mutable dirty_total : int;
}

let create ?(cache = true) store =
  { store; cache_enabled = cache; cache = Hashtbl.create 1024; dirty_total = 0 }

let store t = t.store
let page_size_limit t = t.store.Store.block_size

let allocate t =
  match t.store.Store.allocate () with
  | Ok b -> Ok b
  | Error msg -> Error (Errors.Store_failure msg)

let free t b =
  Hashtbl.remove t.cache b;
  ignore (t.store.Store.free b)

let read t b =
  match Hashtbl.find_opt t.cache b with
  | Some { page; _ } -> Ok page
  | None -> (
      match t.store.Store.read b with
      | Error msg -> Error (Errors.Store_failure msg)
      | Ok image -> (
          match Page.decode image with
          | Error msg -> Error (Errors.Store_failure msg)
          | Ok page ->
              if t.cache_enabled then Hashtbl.replace t.cache b { page; dirty = false };
              Ok page))

let check_size t page =
  let bytes = Page.encoded_size page in
  if bytes > page_size_limit t then
    Error (Errors.Page_too_large { bytes; limit = page_size_limit t })
  else Ok bytes

let store_write t b page =
  match t.store.Store.write b (Page.encode page) with
  | Ok () -> Ok ()
  | Error msg -> Error (Errors.Store_failure msg)

let write t b page =
  match check_size t page with
  | Error _ as e -> e
  | Ok _ ->
      if not t.cache_enabled then store_write t b page
      else begin
        (match Hashtbl.find_opt t.cache b with
        | Some { dirty = true; _ } -> ()
        | Some { dirty = false; _ } | None -> t.dirty_total <- t.dirty_total + 1);
        Hashtbl.replace t.cache b { page; dirty = true };
        Ok ()
      end

let write_through t b page =
  match check_size t page with
  | Error _ as e -> e
  | Ok _ -> (
      match store_write t b page with
      | Error _ as e -> e
      | Ok () ->
          (match Hashtbl.find_opt t.cache b with
          | Some { dirty = true; _ } -> t.dirty_total <- t.dirty_total - 1
          | _ -> ());
          if t.cache_enabled then Hashtbl.replace t.cache b { page; dirty = false };
          Ok ())

let flush_block t b =
  match Hashtbl.find_opt t.cache b with
  | Some { page; dirty = true } -> (
      match store_write t b page with
      | Error _ as e -> e
      | Ok () ->
          Hashtbl.replace t.cache b { page; dirty = false };
          t.dirty_total <- t.dirty_total - 1;
          Ok ())
  | Some { dirty = false; _ } | None -> Ok ()

let flush t =
  let dirty_blocks =
    Hashtbl.fold (fun b { dirty; _ } acc -> if dirty then b :: acc else acc) t.cache []
  in
  (* Deterministic order keeps simulated costs reproducible. *)
  let dirty_blocks = List.sort compare dirty_blocks in
  let rec go = function
    | [] -> Ok ()
    | b :: rest -> ( match flush_block t b with Ok () -> go rest | Error _ as e -> e)
  in
  go dirty_blocks

let dirty_count t = t.dirty_total

let lock t b = t.store.Store.lock b
let unlock t b = t.store.Store.unlock b

let drop_volatile t =
  Hashtbl.reset t.cache;
  t.dirty_total <- 0

let refresh t b =
  match Hashtbl.find_opt t.cache b with
  | Some { dirty = true; _ } -> () (* Our own pending write is authoritative. *)
  | Some { dirty = false; _ } | None -> Hashtbl.remove t.cache b

let invalidate t b =
  (match Hashtbl.find_opt t.cache b with
  | Some { dirty = true; _ } -> t.dirty_total <- t.dirty_total - 1
  | _ -> ());
  Hashtbl.remove t.cache b
