(** The garbage collector (paper abstract and §5.1).

    Once a version has committed, the information in its R and S flags is
    no longer needed, so pages that were {e copied but not written or
    modified} can be removed and the corresponding page of the base
    version re-shared ({!reshare}). Old committed versions beyond a
    retention window can be pruned from the family tree; a mark-and-sweep
    over the retained version trees then frees every unreachable block.

    Resharing only rewrites references — it never frees blocks itself, so
    a later version that still shares a to-be-reshared copy keeps it alive
    through the mark phase. The collector is safe to run at any quiescent
    point; the simulation harness schedules it as its own process,
    interleaved with client traffic ("independent of, and in parallel
    with, the operation of the system"). *)

type policy = {
  retain_committed : int;
      (** Committed versions kept per file, newest first (>= 1). Older
          versions are unlinked; pages they share with retained versions
          survive the sweep. *)
  reshare : bool;  (** Enable the read-copy resharing pass. *)
}

val default_policy : policy

type stats = {
  versions_pruned : int;
  pages_reshared : int;
  blocks_freed : int;
  blocks_live : int;
}

val pp_stats : stats Fmt.t

val reshare_version : Server.t -> int -> int Errors.r
(** [reshare_version server vblock] re-shares the copied-but-unwritten
    subtrees of the committed version at [vblock] with its base version.
    Returns the number of references rewritten. *)

val collect : ?policy:policy -> Server.t -> stats Errors.r
(** Full cycle: reshare every retained committed version, prune beyond the
    retention window, mark from every file's retained chain and
    uncommitted versions, sweep the store's allocated blocks. *)

val live_blocks : Server.t -> (int, unit) Hashtbl.t Errors.r
(** The mark phase alone (exposed for the safety property test: GC must
    never free a block in this set). *)

val background :
  ?policy:policy ->
  Afs_sim.Engine.t ->
  Server.t ->
  period_ms:float ->
  until_ms:float ->
  (unit -> stats)
(** Spawn a simulated collector process that runs {!collect} every
    [period_ms] of virtual time until the clock passes [until_ms] — the
    abstract's collector "running in parallel with the operation of the
    system", interleaved with client processes at commit granularity.
    The returned thunk reports the accumulated totals. *)
