(** Client-side convenience over a {!Server}.

    The concurrency-control contract of the paper puts redo on the client:
    when commit reports a serialisability conflict, "the client must redo
    the update". {!update} packages that loop — create a version, apply
    the caller's transaction body, commit, and on [Conflict] re-run the
    body against a fresh version, up to a retry budget.

    {!read_cached} demonstrates §5.4: reads are served from the client's
    page cache after one validation round trip, with no unsolicited
    messages from servers. *)

type t

val connect : ?use_cache:bool -> ?flag_cache:Cache.Flag_cache.t -> Server.t -> t
val server : t -> Server.t
val counters : t -> Afs_util.Stats.Counter.t

module Txn : sig
  (** Operations bound to one uncommitted version. *)

  type nonrec t

  val version : t -> Afs_util.Capability.t
  val attempt : t -> int
  (** 1 on the first try, incremented per conflict redo. *)

  val read : t -> Afs_util.Pagepath.t -> bytes Errors.r
  val write : t -> Afs_util.Pagepath.t -> bytes -> unit Errors.r
  val insert : t -> parent:Afs_util.Pagepath.t -> index:int -> ?data:bytes -> unit ->
    Afs_util.Pagepath.t Errors.r
  val remove : t -> parent:Afs_util.Pagepath.t -> index:int -> unit Errors.r
end

exception Give_up of Errors.t
(** Raise inside an update body to abort without retrying. *)

val update :
  ?retries:int -> ?respect_hints:bool -> ?large:bool -> t -> Afs_util.Capability.t ->
  (Txn.t -> 'a Errors.r) -> 'a Errors.r
(** [update t file body] runs [body] in a fresh version and commits. On
    [Conflict] (from commit or from the body) the whole body is re-run, up
    to [retries] times (default 16); other errors abort the version and
    propagate.

    The §5.3 soft-lock scheme, both sides: [respect_hints] makes this
    update honour a live top-lock hint on the file (fail fast with
    [Locked_out] rather than race a large update), and [large] makes this
    update {e set} the hint with a fresh port for its duration, warding
    off cooperating writers so it cannot starve (experiment c8). *)

val read_current : t -> Afs_util.Capability.t -> Afs_util.Pagepath.t -> bytes Errors.r
(** One-shot read of the current version, bypassing the cache. *)

val read_cached : t -> Afs_util.Capability.t -> Afs_util.Pagepath.t -> bytes Errors.r
(** Validate this file's cache entry, serve from it on a hit, and fill it
    on a miss. Fails like {!read_current} when the path is absent. *)

val write_whole_file : t -> Afs_util.Capability.t -> bytes -> unit Errors.r
(** The §6 fast path: a one-page file is rewritten as a single version
    whose root holds all the data — one version page, no tree. *)

val create_file : t -> ?data:bytes -> unit -> Afs_util.Capability.t Errors.r
