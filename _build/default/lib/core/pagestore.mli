(** Typed page access over a {!Store.t}, with a write-back page cache.

    The paper notes (§5.4) that the page cache "does not have to be a
    write-through cache": pages written in a version need not reach stable
    storage until just before commit. This module implements exactly that:
    {!write} updates the cache and marks the block dirty; {!flush} makes
    everything durable; the commit path calls {!flush} first, and crash
    simulation calls {!drop_volatile} to lose whatever was not flushed. *)

type t

val create : ?cache:bool -> Store.t -> t
(** [cache:false] makes every write write-through and every read hit the
    store — the ablation baseline. *)

val store : t -> Store.t

val page_size_limit : t -> int
(** The store's block size, which by §5 is at most 32K: a page must fit in
    one atomic transaction message. *)

val allocate : t -> (int, Errors.t) result
val free : t -> int -> unit

val read : t -> int -> (Page.t, Errors.t) result

val write : t -> int -> Page.t -> (unit, Errors.t) result
(** Cached, deferred write. Fails with [Page_too_large] if the encoded
    page exceeds the block size. *)

val write_through : t -> int -> Page.t -> (unit, Errors.t) result
(** Immediately durable (used for version pages in the commit path). *)

val flush : t -> (unit, Errors.t) result
val flush_block : t -> int -> (unit, Errors.t) result

val dirty_count : t -> int

val lock : t -> int -> bool
val unlock : t -> int -> unit

val drop_volatile : t -> unit
(** Forget the cache, clean and dirty alike: simulates a server crash.
    Unflushed writes are lost, exactly as the paper intends for
    uncommitted versions. *)

val invalidate : t -> int -> unit
(** Drop one block from the cache (used after another server wrote it). *)

val refresh : t -> int -> unit
(** Like {!invalidate} but keeps a dirty (locally written, unflushed)
    entry: used before re-examining a commit reference that another
    server may have set. *)
