module Capability = Afs_util.Capability
module Pagepath = Afs_util.Pagepath
module Stats = Afs_util.Stats

open Errors

type t = {
  server : Server.t;
  cache : Cache.t option;
  flag_cache : Cache.Flag_cache.t option;
  counters : Stats.Counter.t;
}

let connect ?(use_cache = true) ?flag_cache server =
  {
    server;
    cache = (if use_cache then Some (Cache.create server) else None);
    flag_cache;
    counters = Stats.Counter.create ();
  }

let server t = t.server
let counters t = t.counters
let bump t name = Stats.Counter.incr t.counters name

module Txn = struct
  type nonrec t = { client : t; version : Capability.t; attempt : int }

  let version txn = txn.version
  let attempt txn = txn.attempt
  let read txn path = Server.read_page txn.client.server txn.version path
  let write txn path data = Server.write_page txn.client.server txn.version path data

  let insert txn ~parent ~index ?data () =
    Server.insert_page txn.client.server txn.version ~parent ~index ?data ()

  let remove txn ~parent ~index = Server.remove_page txn.client.server txn.version ~parent ~index
end

exception Give_up of Errors.t

let update ?(retries = 16) ?(respect_hints = false) ?(large = false) t file body =
  let ports = Server.ports t.server in
  let hint_port = if large then Ports.fresh ports else 0 in
  let release_hint () = if large then Ports.kill ports hint_port in
  let rec go attempt =
    bump t "txn.attempts";
    let* version = Server.create_version ~respect_hints ~updater_port:hint_port t.server file in
    let txn = { Txn.client = t; version; attempt } in
    let outcome = try body txn with Give_up e -> Error e in
    match outcome with
    | Error e ->
        (* The body failed: the version is garbage either way. *)
        ignore (Server.abort_version t.server version);
        if e = Conflict && attempt < retries then begin
          bump t "txn.redone";
          go (attempt + 1)
        end
        else Error e
    | Ok value -> (
        match Server.commit t.server version with
        | Ok () ->
            bump t "txn.committed";
            Ok value
        | Error Conflict when attempt < retries ->
            bump t "txn.redone";
            go (attempt + 1)
        | Error e -> Error e)
  in
  let result = go 1 in
  release_hint ();
  result

let read_current t file path =
  let* current = Server.current_version t.server file in
  Server.read_page t.server current path

let read_cached t file path =
  match t.cache with
  | None -> read_current t file path
  | Some cache -> (
      let* validation = Cache.revalidate ?flag_cache:t.flag_cache cache ~file in
      match Cache.get cache ~file ~path with
      | Some data ->
          bump t "cache.hits";
          Ok data
      | None ->
          bump t "cache.misses";
          let* current = Server.current_version t.server file in
          let* data = Server.read_page t.server current path in
          Cache.put cache ~file ~basis_block:validation.Cache.current_block ~path ~data;
          Ok data)

let write_whole_file t file data =
  update t file (fun txn -> Txn.write txn Pagepath.root data)

let create_file t ?data () = Server.create_file t.server ?data ()
