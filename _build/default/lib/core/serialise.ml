module Pagepath = Afs_util.Pagepath

type stats = { pages_visited : int; pages_adopted : int }

type verdict =
  | Serialisable of stats
  | Conflict of { path : Pagepath.t; reason : string; stats : stats }

exception Conflict_found of { path : Pagepath.t; reason : string }
exception Store_error of Errors.t

type walk_state = { ps : Pagestore.t; dry_run : bool; mutable visited : int; mutable adopted : int }

let read_page st block =
  st.visited <- st.visited + 1;
  match Pagestore.read st.ps block with Ok p -> p | Error e -> raise (Store_error e)

let write_page st block page =
  if not st.dry_run then
    match Pagestore.write st.ps block page with
    | Ok () -> ()
    | Error e -> raise (Store_error e)

let conflict path reason = raise (Conflict_found { path; reason })

let cleared_copy refs = Array.map (fun e -> { e with Page.flags = Flags.clear }) refs

(* Merge the contents of page [pb] (the candidate's private copy at
   [b_block]) with [pc] (the committed version's copy of the same base
   page), given the access flags [fb] and [fc] their parents hold for
   them. Returns the merged page to store at [b_block]. *)
let rec merge_pages st path ~fb ~fc pb pc =
  (* Data level: W_c against R_b. *)
  if fc.Flags.w && fb.Flags.r then conflict path "data written by committed, read by candidate";
  (* Structure level: M_c against S_b. *)
  if fc.Flags.m && fb.Flags.s then
    conflict path "references modified by committed, searched by candidate";
  let data =
    if fb.Flags.w then pb.Page.data else if fc.Flags.w then pc.Page.data else pb.Page.data
  in
  let refs =
    if fc.Flags.m then begin
      (* S_b is clear here (checked above): the candidate never looked
         below this page, so the committed version's whole reference table
         is adopted, shared with the new base. *)
      st.adopted <- st.adopted + 1;
      cleared_copy pc.Page.refs
    end
    else if fb.Flags.m then begin
      (* The candidate restructured; the committed version must not have
         accessed anything below or index correspondence is lost. *)
      Array.iteri
        (fun i (e : Page.ref_entry) ->
          if e.Page.flags.Flags.c then
            conflict (Pagepath.child path i)
              "candidate restructured references over pages the committed update accessed")
        pc.Page.refs;
      pb.Page.refs
    end
    else begin
      (* Neither restructured: both tables descend from the same base
         table, index by index. *)
      if Array.length pb.Page.refs <> Array.length pc.Page.refs then
        raise
          (Store_error
             (Errors.Store_failure
                (Printf.sprintf "reference tables diverged at %s without M flags"
                   (Pagepath.to_string path))));
      Array.mapi
        (fun i eb -> merge_children st (Pagepath.child path i) eb pc.Page.refs.(i))
        pb.Page.refs
    end
  in
  Page.with_contents pb ~refs ~data

(* Decide what the merged version's reference at [path] is, given the
   candidate's entry [eb] and the committed version's entry [ec] for the
   same base slot. *)
and merge_children st path (eb : Page.ref_entry) (ec : Page.ref_entry) : Page.ref_entry =
  match (eb.Page.flags.Flags.c, ec.Page.flags.Flags.c) with
  | false, false ->
      (* Untouched on both sides: still the shared base page. *)
      eb
  | false, true ->
      (* Candidate never accessed it; adopt the committed subtree, shared
         with the new base (flags clear). *)
      st.adopted <- st.adopted + 1;
      { Page.block = ec.Page.block; flags = Flags.clear }
  | true, false ->
      (* Committed update never accessed it; the candidate's private copy
         stands, flags unchanged (they are equally valid relative to the
         new base, which left this subtree alone). *)
      eb
  | true, true ->
      let pb = read_page st eb.Page.block in
      let pc = read_page st ec.Page.block in
      let merged = merge_pages st path ~fb:eb.Page.flags ~fc:ec.Page.flags pb pc in
      write_page st eb.Page.block merged;
      eb

let run st ~candidate ~committed =
  let vb = read_page st candidate in
  let vc = read_page st committed in
  let fb = vb.Page.header.Page.root_flags in
  let fc = vc.Page.header.Page.root_flags in
  let merged_root = merge_pages st Pagepath.root ~fb ~fc vb vc in
  if not st.dry_run then begin
    let header = { merged_root.Page.header with Page.base_ref = Some committed } in
    let merged_root = Page.with_header merged_root header in
    match Pagestore.write_through st.ps candidate merged_root with
    | Ok () -> ()
    | Error e -> raise (Store_error e)
  end

let execute ~dry_run ps ~candidate ~committed =
  let st = { ps; dry_run; visited = 0; adopted = 0 } in
  let stats () = { pages_visited = st.visited; pages_adopted = st.adopted } in
  match run st ~candidate ~committed with
  | () -> Ok (Serialisable (stats ()))
  | exception Conflict_found { path; reason } -> Ok (Conflict { path; reason; stats = stats () })
  | exception Store_error e -> Error e

let test_and_merge ps ~candidate ~committed = execute ~dry_run:false ps ~candidate ~committed
let test_only ps ~candidate ~committed = execute ~dry_run:true ps ~candidate ~committed

type change = Data_changed | Structure_changed

let diff_trees ps ~old_version ~new_version =
  let ( let* ) = Result.bind in
  let acc = ref [] in
  let rec walk path old_block new_block =
    if old_block = new_block then Ok () (* Shared subtree: identical. *)
    else
      let* old_page = Pagestore.read ps old_block in
      let* new_page = Pagestore.read ps new_block in
      if not (Bytes.equal old_page.Page.data new_page.Page.data) then
        acc := (path, Data_changed) :: !acc;
      let n_old = Page.nrefs old_page and n_new = Page.nrefs new_page in
      if n_old <> n_new then acc := (path, Structure_changed) :: !acc;
      let rec children i =
        if i >= min n_old n_new then Ok ()
        else
          match (Page.get_ref old_page i, Page.get_ref new_page i) with
          | Ok eo, Ok en ->
              let* () = walk (Pagepath.child path i) eo.Page.block en.Page.block in
              children (i + 1)
          | Error msg, _ | _, Error msg -> Error (Errors.Store_failure msg)
      in
      children 0
  in
  let* () = walk Pagepath.root old_version new_version in
  Ok (List.rev !acc)

let written_paths ps ~version =
  let acc = ref [] in
  let rec walk_page path page =
    Array.iteri
      (fun i (e : Page.ref_entry) ->
        let child = Pagepath.child path i in
        let f = e.Page.flags in
        if f.Flags.w || f.Flags.m then acc := child :: !acc;
        if f.Flags.c then walk_block child e.Page.block)
      page.Page.refs
  and walk_block path block =
    match Pagestore.read ps block with
    | Ok page -> walk_page path page
    | Error e -> raise (Store_error e)
  in
  match Pagestore.read ps version with
  | Error _ as e -> e
  | Ok root -> (
      let rf = root.Page.header.Page.root_flags in
      if rf.Flags.w || rf.Flags.m then acc := Pagepath.root :: !acc;
      match walk_page Pagepath.root root with
      | () -> Ok (List.rev !acc)
      | exception Store_error e -> Error e)
