(** Update ports and their liveness (paper §5.3).

    "Locks are made of ports": the top/inner lock fields of a version page
    hold the port of the update that set them. A port is backed by the
    updating process's transaction state, so when that process crashes,
    the port dies with it — which is what lets a waiting server decide
    whether a lock is live or abandoned without any timeout protocol.

    A registry instance models one system's port space; crash injection
    kills ports. *)

type t

val create : unit -> t

val fresh : t -> int
(** A new live port (never 0, which is the cleared-lock value). *)

val kill : t -> int -> unit
(** The owning process crashed; the port is dead from now on. *)

val alive : t -> int -> bool
(** True for live ports. 0 (no lock) and unknown ports are dead. *)
