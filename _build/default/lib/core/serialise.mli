(** The one-pass serialisability test and version merge (paper §5.2).

    A candidate version [V_b], based on [V_a], wants to commit, but a
    concurrent update [V_c] (also based on [V_a]) committed first. By
    Kung & Robinson's condition (2) the schedule is serialisable as
    [V_c; V_b] iff the write set of [V_c] does not intersect the read set
    of [V_b]. The flags make both sets available without any per-
    transaction log: descending both page trees in parallel,

    - a data conflict is a page with [W] set in [V_c] and [R] set in [V_b];
    - a structure conflict is a page with [M] set in [V_c] and [S] set in
      [V_b];

    and any subtree whose reference has [C] clear in either version can be
    skipped wholesale — it was not even accessed there. In the same pass
    the merged successor is prepared: parts of [V_b]'s tree it never
    accessed are replaced by the corresponding written parts of [V_c], so
    the merged version carries both updates and is re-based on [V_c].

    One case the paper leaves open: [V_b] restructured a page's reference
    table ([M]) while [V_c] independently accessed pages below it. Index
    correspondence is lost, so we conservatively report a conflict; this
    can only over-abort, never accept a non-serialisable schedule (noted
    in DESIGN.md). *)

type stats = {
  pages_visited : int;  (** Pages read by the test — its cost metric. *)
  pages_adopted : int;  (** Subtrees of [V_c] grafted into the merge. *)
}

type verdict =
  | Serialisable of stats
  | Conflict of { path : Afs_util.Pagepath.t; reason : string; stats : stats }

val test_and_merge :
  Pagestore.t -> candidate:int -> committed:int -> (verdict, Errors.t) result
(** [test_and_merge ps ~candidate ~committed] checks the candidate version
    (by version-page block) against the committed one and, when
    serialisable, rewrites the candidate's pages in place (they are
    private copies) so that it is based on [committed]. The candidate's
    version page is updated with the new base reference. *)

val test_only : Pagestore.t -> candidate:int -> committed:int -> (verdict, Errors.t) result
(** The same walk without any writes: used for cache validation and the
    flag-cache ablation. *)

val written_paths :
  Pagestore.t -> version:int -> (Afs_util.Pagepath.t list, Errors.t) result
(** Paths of pages the given version wrote or restructured relative to its
    base (the version's write set), root-first. Used by cache
    invalidation: these are exactly the pages a holder of the base version
    must discard. *)

type change = Data_changed | Structure_changed

val diff_trees :
  Pagestore.t -> old_version:int -> new_version:int ->
  ((Afs_util.Pagepath.t * change) list, Errors.t) result
(** Structural diff between two version trees of the same file, in time
    proportional to what differs: identical block numbers mean identical
    shared subtrees and are skipped without being read — the differential
    representation makes history diffs nearly free. Reports pages whose
    data differs and pages whose reference table changed shape (a
    [Structure_changed] page's descendants are compared positionally as
    far as both sides reach). Order is root-first. *)
