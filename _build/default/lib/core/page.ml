module Capability = Afs_util.Capability
module Wire = Afs_util.Wire

type ref_entry = { block : int; flags : Flags.t }

type header = {
  file_cap : Capability.t option;
  version_cap : Capability.t option;
  commit_ref : int option;
  top_lock : int;
  inner_lock : int;
  parent_ref : int option;
  base_ref : int option;
  root_flags : Flags.t;
}

type t = { header : header; refs : ref_entry array; data : bytes }

let nil_block = 0xFFFFFFF
let max_block_number = nil_block - 1

let plain_header =
  {
    file_cap = None;
    version_cap = None;
    commit_ref = None;
    top_lock = 0;
    inner_lock = 0;
    parent_ref = None;
    base_ref = None;
    root_flags = Flags.clear;
  }

let empty = { header = plain_header; refs = [||]; data = Bytes.empty }

let make_version_page ~file_cap ~version_cap ~base_ref ~parent_ref ~refs ~data =
  {
    header =
      {
        plain_header with
        file_cap = Some file_cap;
        version_cap = Some version_cap;
        base_ref;
        parent_ref;
      };
    refs;
    data;
  }

let is_version_page t = t.header.file_cap <> None
let nrefs t = Array.length t.refs
let dsize t = Bytes.length t.data

let get_ref t i =
  if i < 0 || i >= Array.length t.refs then
    Error (Printf.sprintf "reference index %d out of range (nrefs=%d)" i (Array.length t.refs))
  else Ok t.refs.(i)

let with_data t data = { t with data }
let with_header t header = { t with header }
let with_contents t ~refs ~data = { t with refs; data }

let with_ref t i entry =
  if i < 0 || i >= Array.length t.refs then Error "with_ref: index out of range"
  else begin
    let refs = Array.copy t.refs in
    refs.(i) <- entry;
    Ok { t with refs }
  end

let insert_ref t i entry =
  let n = Array.length t.refs in
  if i < 0 || i > n then Error "insert_ref: index out of range"
  else begin
    let refs =
      Array.init (n + 1) (fun j ->
          if j < i then t.refs.(j) else if j = i then entry else t.refs.(j - 1))
    in
    Ok { t with refs }
  end

let remove_ref t i =
  let n = Array.length t.refs in
  if i < 0 || i >= n then Error "remove_ref: index out of range"
  else begin
    let refs = Array.init (n - 1) (fun j -> if j < i then t.refs.(j) else t.refs.(j + 1)) in
    Ok { t with refs }
  end

let record_access t i access =
  match get_ref t i with
  | Error _ as e -> e
  | Ok entry -> with_ref t i { entry with flags = Flags.record entry.flags access }

let clear_child_flags t =
  { t with refs = Array.map (fun e -> { e with flags = Flags.clear }) t.refs }

(* {2 Wire format} *)

let magic = 0xAF5
let format_version = 1

let check_block_number b =
  if b < 0 || b > max_block_number then
    invalid_arg (Printf.sprintf "Page: block number %d out of 28-bit range" b)

let encode_opt_block = function
  | None -> nil_block
  | Some b ->
      check_block_number b;
      b

let decode_opt_block v = if v = nil_block then None else Some v

let encode_cap w cap =
  Wire.Writer.u64 w (Int64.of_int (Capability.port_to_int cap.Capability.port));
  Wire.Writer.varint w cap.Capability.obj;
  Wire.Writer.u8 w (Capability.rights_to_int cap.Capability.rights);
  Wire.Writer.u32 w cap.Capability.check

let decode_cap r =
  let port = Capability.port_of_int (Int64.to_int (Wire.Reader.u64 r)) in
  let obj = Wire.Reader.varint r in
  let rights = Capability.rights_of_int (Wire.Reader.u8 r) in
  let check = Wire.Reader.u32 r in
  { Capability.port; obj; rights; check }

let encode t =
  let w = Wire.Writer.create ~capacity:(256 + Bytes.length t.data) () in
  Wire.Writer.u16 w magic;
  Wire.Writer.u8 w format_version;
  let h = t.header in
  (match (h.file_cap, h.version_cap) with
  | Some fc, Some vc ->
      Wire.Writer.u8 w 1;
      encode_cap w fc;
      encode_cap w vc;
      Wire.Writer.u32 w (encode_opt_block h.commit_ref);
      Wire.Writer.u64 w (Int64.of_int h.top_lock);
      Wire.Writer.u64 w (Int64.of_int h.inner_lock);
      Wire.Writer.u32 w (encode_opt_block h.parent_ref);
      Wire.Writer.u8 w (Flags.to_nibble h.root_flags)
  | None, None -> Wire.Writer.u8 w 0
  | _ -> invalid_arg "Page.encode: version page must carry both capabilities");
  Wire.Writer.u32 w (encode_opt_block h.base_ref);
  Wire.Writer.varint w (Array.length t.refs);
  Wire.Writer.varint w (Bytes.length t.data);
  Array.iter
    (fun e ->
      check_block_number e.block;
      Wire.Writer.u32 w ((e.block lsl 4) lor Flags.to_nibble e.flags))
    t.refs;
  Wire.Writer.bytes w t.data;
  Wire.Writer.contents w

let encoded_size t = Bytes.length (encode t)

let decode image =
  match
    let r = Wire.Reader.of_bytes image in
    if Wire.Reader.u16 r <> magic then Error "bad page magic"
    else if Wire.Reader.u8 r <> format_version then Error "bad page format version"
    else begin
      let kind = Wire.Reader.u8 r in
      let header =
        if kind = 1 then begin
          let file_cap = decode_cap r in
          let version_cap = decode_cap r in
          let commit_ref = decode_opt_block (Wire.Reader.u32 r) in
          let top_lock = Int64.to_int (Wire.Reader.u64 r) in
          let inner_lock = Int64.to_int (Wire.Reader.u64 r) in
          let parent_ref = decode_opt_block (Wire.Reader.u32 r) in
          match Flags.of_nibble (Wire.Reader.u8 r) with
          | None -> Error "illegal root flag nibble"
          | Some root_flags ->
              Ok
                {
                  plain_header with
                  file_cap = Some file_cap;
                  version_cap = Some version_cap;
                  commit_ref;
                  top_lock;
                  inner_lock;
                  parent_ref;
                  root_flags;
                }
        end
        else if kind = 0 then Ok plain_header
        else Error "bad page kind"
      in
      match header with
      | Error _ as e -> e
      | Ok header -> (
          let base_ref = decode_opt_block (Wire.Reader.u32 r) in
          let header = { header with base_ref } in
          let nrefs = Wire.Reader.varint r in
          let dsize = Wire.Reader.varint r in
          let bad_nibble = ref false in
          let refs =
            Array.init nrefs (fun _ ->
                let packed = Wire.Reader.u32 r in
                match Flags.of_nibble (packed land 0xF) with
                | Some flags -> { block = packed lsr 4; flags }
                | None ->
                    bad_nibble := true;
                    { block = packed lsr 4; flags = Flags.clear })
          in
          if !bad_nibble then Error "illegal flag nibble in reference table"
          else
            let data = Wire.Reader.bytes r dsize in
            let () = Wire.Reader.expect_end r in
            Ok { header; refs; data })
    end
  with
  | result -> result
  | exception Wire.Decode_error msg -> Error ("page decode: " ^ msg)

let version_header_bytes = (2 * (8 + 3 + 1 + 4)) + 4 + 8 + 8 + 4 + 1
let fixed_bytes = 2 + 1 + 1 + 4 + 3 + 3

let data_capacity ~block_size ~nrefs ~is_version =
  block_size - fixed_bytes - (is_version * version_header_bytes) - (4 * nrefs)

let pp ppf t =
  let h = t.header in
  Fmt.pf ppf "@[<v>page%s nrefs=%d dsize=%d base=%a commit=%a root=%a@,refs: %a@]"
    (if is_version_page t then "(version)" else "")
    (nrefs t) (dsize t)
    Fmt.(option ~none:(any "nil") int)
    h.base_ref
    Fmt.(option ~none:(any "nil") int)
    h.commit_ref Flags.pp h.root_flags
    Fmt.(array ~sep:sp (fun ppf e -> Fmt.pf ppf "%d:%a" e.block Flags.pp e.flags))
    t.refs
