(** Page path names (paper §5).

    Pages within a file are referred to by pathnames: the root page has the
    empty pathname, and a child's pathname is its parent's pathname extended
    with the child's index in the parent's reference table. Pathnames are
    visible to clients, giving them explicit control over file shape. *)

type t
(** A pathname: a sequence of non-negative reference indices, root-first. *)

val root : t
(** The empty pathname of the root (version) page. *)

val of_list : int list -> t
(** Raises [Invalid_argument] on negative indices. *)

val to_list : t -> int list

val child : t -> int -> t
(** [child p i] extends [p] with index [i]. Raises on negative [i]. *)

val parent : t -> t option
(** [parent p] drops the last index; [None] for the root. *)

val last : t -> int option
(** The final index; [None] for the root. *)

val depth : t -> int

val is_root : t -> bool

val is_prefix : t -> t -> bool
(** [is_prefix a b] is true when page [a] lies on the path from the root to
    page [b] (inclusive: every path prefixes itself). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val to_string : t -> string
(** Dotted rendering, ["/"] for the root, e.g. ["/2.0.5"]. *)

val of_string : string -> (t, string) result
(** Inverse of [to_string]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
