(** Amoeba-style capabilities (Mullender & Tanenbaum 1985b).

    A capability names an object managed by some service and carries the
    rights its holder may exercise. It is protected by a check field: a
    one-way function of the object number, the rights and a secret known
    only to the managing server. Clients can pass capabilities around and
    restrict rights, but cannot forge or amplify them.

    The file service hands out two kinds: file capabilities and version
    capabilities (paper §5). This module is agnostic to the kind; services
    layer their own meaning on [obj]. *)

type rights
(** A set of access rights, at most 8 distinct bits. *)

val rights_all : rights
val rights_none : rights

val right_read : rights
val right_write : rights
val right_commit : rights
val right_destroy : rights
val right_admin : rights

val rights_union : rights -> rights -> rights
val rights_subset : rights -> rights -> bool
(** [rights_subset a b] is true when every right in [a] is also in [b]. *)

val rights_to_int : rights -> int
val rights_of_int : int -> rights
val pp_rights : rights Fmt.t

type port = private int
(** A 48-bit service port, the Amoeba addressing unit. Ports also serve as
    lock identities in the file service (§5.3). *)

val port_of_int : int -> port
val port_to_int : port -> int
val pp_port : port Fmt.t

type t = { port : port; obj : int; rights : rights; check : int }
(** The capability proper. [check] is opaque to clients. *)

type secret
(** Server-side secret used to mint and validate check fields. *)

val secret_of_seed : int -> secret

val mint : secret -> port:port -> obj:int -> rights:rights -> t
(** Server-side: create a valid capability. *)

val validate : secret -> t -> bool
(** Server-side: true iff the check field matches the object and rights. *)

val restrict : secret -> t -> rights -> (t, string) result
(** [restrict secret cap subset] returns a capability for fewer rights.
    In full Amoeba a commutative one-way function lets anyone restrict;
    here restriction is performed by the owning server, which validates
    [cap] first and refuses right amplification. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
