lib/util/xrng.ml: Array Int64
