lib/util/stats.ml: Array Float Fmt Hashtbl List Stdlib String
