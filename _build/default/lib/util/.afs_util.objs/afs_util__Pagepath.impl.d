lib/util/pagepath.ml: Fmt List Map Printf Result Set Stdlib String
