lib/util/zipf.mli: Xrng
