lib/util/capability.ml: Fmt Int64 List Stdlib String Xrng
