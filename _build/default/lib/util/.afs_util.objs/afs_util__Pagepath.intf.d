lib/util/pagepath.mli: Fmt Map Set
