lib/util/capability.mli: Fmt
