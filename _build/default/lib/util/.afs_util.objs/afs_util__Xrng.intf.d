lib/util/xrng.mli:
