lib/util/wire.mli:
