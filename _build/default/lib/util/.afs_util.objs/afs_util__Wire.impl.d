lib/util/wire.ml: Array Buffer Bytes Char Int64 Lazy Printf String
