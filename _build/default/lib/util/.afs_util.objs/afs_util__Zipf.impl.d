lib/util/zipf.ml: Array Xrng
