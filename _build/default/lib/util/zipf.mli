(** Zipf-distributed sampling over [0, n).

    Used by workload generators to model skewed access to files and pages
    ("hot" airline routes, popular accounts). A [theta] of 0 is uniform;
    larger values are more skewed (0.8-1.2 are typical database-benchmark
    settings). *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over ranks [0, n). Raises
    [Invalid_argument] if [n <= 0] or [theta < 0]. *)

val n : t -> int

val theta : t -> float

val sample : t -> Xrng.t -> int
(** Draw a rank; rank 0 is the most popular. *)

val probability : t -> int -> float
(** [probability t k] is the probability mass of rank [k]. *)
