(* Stored root-first so that [is_prefix] and descent are direct walks. The
   lists involved are short (tree depth), so persistence beats arrays. *)

type t = int list

let root = []

let of_list indices =
  List.iter (fun i -> if i < 0 then invalid_arg "Pagepath.of_list: negative index") indices;
  indices

let to_list t = t

let child t i =
  if i < 0 then invalid_arg "Pagepath.child: negative index";
  t @ [ i ]

let parent = function
  | [] -> None
  | t -> Some (List.filteri (fun pos _ -> pos < List.length t - 1) t)

let last = function
  | [] -> None
  | t -> Some (List.nth t (List.length t - 1))

let depth = List.length

let is_root t = t = []

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && is_prefix a' b'

let equal = ( = )
let compare = Stdlib.compare

let to_string = function
  | [] -> "/"
  | t -> "/" ^ String.concat "." (List.map string_of_int t)

let pp ppf t = Fmt.string ppf (to_string t)

let of_string s =
  if s = "/" then Ok []
  else if String.length s = 0 || s.[0] <> '/' then Error "pathname must start with '/'"
  else
    let body = String.sub s 1 (String.length s - 1) in
    let parts = String.split_on_char '.' body in
    let parse acc part =
      match acc with
      | Error _ as e -> e
      | Ok indices -> (
          match int_of_string_opt part with
          | Some i when i >= 0 -> Ok (i :: indices)
          | _ -> Error (Printf.sprintf "bad path component %S" part))
    in
    Result.map List.rev (List.fold_left parse (Ok []) parts)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
