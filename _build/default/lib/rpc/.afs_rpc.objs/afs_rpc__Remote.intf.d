lib/rpc/remote.mli: Afs_core Afs_disk Afs_sim Afs_util
