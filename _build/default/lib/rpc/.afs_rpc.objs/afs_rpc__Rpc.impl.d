lib/rpc/rpc.ml: Afs_disk Afs_sim Fmt List Queue
