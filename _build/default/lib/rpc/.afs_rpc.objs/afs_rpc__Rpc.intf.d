lib/rpc/rpc.mli: Afs_disk Afs_sim Fmt
