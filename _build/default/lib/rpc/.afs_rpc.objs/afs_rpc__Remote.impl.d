lib/rpc/remote.ml: Afs_core Afs_util Array Result Rpc
