lib/disk/media.mli: Fmt
