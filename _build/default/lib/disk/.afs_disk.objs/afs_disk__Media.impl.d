lib/disk/media.ml: Fmt
