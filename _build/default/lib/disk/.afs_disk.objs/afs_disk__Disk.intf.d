lib/disk/disk.mli: Fmt Media
