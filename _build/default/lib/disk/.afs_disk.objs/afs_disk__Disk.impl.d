lib/disk/disk.ml: Array Bytes Char Fmt Media
