(* afs_cli — inspect and demonstrate the Amoeba File Service from the
   command line.

     afs_cli walkthrough          annotated trace of the §5 mechanisms,
                                  with page-tree dumps showing C/R/W/S/M
     afs_cli simulate [...]       run the multi-client workload driver
                                  and print a report row
     afs_cli conflict [...]       build a concurrent schedule and show
                                  the serialisability verdict
     afs_cli trace FILE           summarise a catapult trace written by
                                  simulate --trace

   The store is in-memory: the tool is a demonstrator and debugging aid,
   not a persistence layer. *)

open Cmdliner
open Afs_core
module P = Afs_util.Pagepath

let ok = function Ok v -> v | Error e -> failwith (Errors.to_string e)
let bytes = Bytes.of_string

(* {2 Page-tree dumping} *)

let dump_tree srv version_cap =
  let ps = Server.pagestore srv in
  let vblock = ok (Server.version_block srv version_cap) in
  let rec dump block path flags depth =
    let page = ok (Pagestore.read ps block) in
    Printf.printf "  %-22s block=%-4d %-7s dsize=%-5d %s\n"
      (String.make (2 * depth) ' ' ^ P.to_string path)
      block
      (Fmt.str "%a" Flags.pp flags)
      (Page.dsize page)
      (if Page.is_version_page page then
         Printf.sprintf "[version page, base=%s commit=%s]"
           (match page.Page.header.Page.base_ref with Some b -> string_of_int b | None -> "nil")
           (match page.Page.header.Page.commit_ref with Some b -> string_of_int b | None -> "nil")
       else "");
    Array.iteri
      (fun i (e : Page.ref_entry) -> dump e.Page.block (P.child path i) e.Page.flags (depth + 1))
      page.Page.refs
  in
  let root = ok (Pagestore.read ps vblock) in
  dump vblock P.root root.Page.header.Page.root_flags 0

(* {2 walkthrough} *)

let walkthrough () =
  let store = Store.memory () in
  let srv = Server.create store in
  let say fmt = Printf.printf ("\n--- " ^^ fmt ^^ "\n") in

  say "create a file with three pages; the initial version commits at once";
  let f = ok (Server.create_file srv ~data:(bytes "root data") ()) in
  let v0 = ok (Server.create_version srv f) in
  List.iteri
    (fun i d -> ignore (ok (Server.insert_page srv v0 ~parent:P.root ~index:i ~data:(bytes d) ())))
    [ "alpha"; "beta"; "gamma" ];
  ok (Server.commit srv v0);
  dump_tree srv (ok (Server.current_version srv f));

  say "a new version initially shares every page (all flags clear)";
  let v = ok (Server.create_version srv f) in
  dump_tree srv v;

  say "reading /1 copies it (access implies copy: C+R) and marks the root searched (S)";
  ignore (ok (Server.read_page srv v (P.of_list [ 1 ])));
  dump_tree srv v;

  say "writing /0 copies and marks it written (C+W); /2 stays shared";
  ok (Server.write_page srv v (P.of_list [ 0 ]) (bytes "ALPHA'"));
  dump_tree srv v;

  say "inserting a page sets M (and S) on the root: an explicit structure change";
  ignore (ok (Server.insert_page srv v ~parent:P.root ~index:3 ~data:(bytes "delta") ()));
  dump_tree srv v;

  say "commit: uncontended, so it is a bare test-and-set of the base's commit reference";
  ok (Server.commit srv v);
  dump_tree srv (ok (Server.current_version srv f));

  say "a concurrent pair: A reads /1 and writes /3, B writes /1; B commits first";
  let va = ok (Server.create_version srv f) in
  let vb = ok (Server.create_version srv f) in
  ignore (ok (Server.read_page srv va (P.of_list [ 1 ])));
  ok (Server.write_page srv va (P.of_list [ 3 ]) (bytes "A's write"));
  ok (Server.write_page srv vb (P.of_list [ 1 ]) (bytes "B's write"));
  ok (Server.commit srv vb);
  Printf.printf "\n  A's version before its doomed commit:\n";
  dump_tree srv va;
  (match Server.commit srv va with
  | Error Errors.Conflict ->
      Printf.printf
        "\n  commit A -> CONFLICT: B wrote /1, which A read (W of committed intersects R\n\
        \  of candidate). A's version was removed; the client redoes the update.\n"
  | Ok () -> Printf.printf "\n  UNEXPECTED: conflict missed\n"
  | Error e -> failwith (Errors.to_string e));

  say "the family tree (committed chain) after everything";
  let chain = ok (Server.committed_chain srv f) in
  Printf.printf "  %s\n"
    (String.concat " -> " (List.map (fun b -> Printf.sprintf "block %d" b) chain));
  Printf.printf "\ncounters:\n";
  List.iter (fun (k, v) -> Printf.printf "  %-28s %d\n" k v)
    (Afs_util.Stats.Counter.to_list (Server.counters srv))

(* {2 Replication helpers} *)

(* Schedule the deterministic crash: kill shard [k]'s RPC host at [ms],
   wait [failover_ms], then promote its first replica. Runs through the
   Faults schedule so the kill shows up in traces as a fault.fire point. *)
let schedule_kill engine cluster ~replicas ~failover_ms ~trace = function
  | None -> ()
  | Some (k, at_ms) ->
      let module Cluster = Afs_cluster.Cluster in
      if replicas <= 0 then
        failwith "--kill-primary needs --replicas >= 1 (nothing to promote)";
      if k < 0 || k >= Cluster.nshards cluster then
        failwith (Printf.sprintf "--kill-primary: no shard %d" k);
      let faults = Afs_replica.Faults.create engine in
      Afs_replica.Faults.set_trace faults trace;
      Afs_replica.Faults.at faults ~ms:at_ms
        ~label:(Printf.sprintf "kill-primary:%d" k)
        (fun () ->
          Afs_rpc.Remote.crash_host (Afs_cluster.Shard.host (Cluster.shard cluster k));
          Afs_sim.Proc.delay failover_ms;
          match Cluster.promote cluster k with
          | Ok p ->
              Printf.printf
                "failover: shard %d promoted at %.1f ms (epoch %d, watermark %d, %d \
                 files recovered)\n"
                k (Afs_sim.Engine.now engine) p.Cluster.epoch p.Cluster.watermark
                p.Cluster.recovered_files
          | Error e ->
              Printf.printf "failover: shard %d promotion FAILED: %s\n" k
                (Errors.to_string e))

(* Per-member replication columns: role, epoch, watermarks, lag. *)
let replication_report cluster =
  let module Cluster = Afs_cluster.Cluster in
  let module Replica = Afs_replica.Replica in
  let module H = Afs_util.Stats.Histogram in
  let any = ref false in
  for i = 0 to Cluster.nshards cluster - 1 do
    if Cluster.replication_source cluster i <> None then any := true
  done;
  if !any then begin
    Printf.printf "\n%-12s %-8s %6s %8s %8s %5s %9s %9s\n" "member" "role" "epoch"
      "shipped" "applied" "lag" "lag-p50" "lag-p95";
    for i = 0 to Cluster.nshards cluster - 1 do
      (match Cluster.replication_source cluster i with
      | None -> ()
      | Some src ->
          Printf.printf "%-12s %-8s %6d %8d %8s %5s %9s %9s\n"
            (Printf.sprintf "shard-%d" i)
            "primary"
            (Replica.Source.born_epoch src)
            (Replica.Source.shipped_seq src)
            "-" "-" "-" "-");
      List.iteri
        (fun j r ->
          let lagh = Replica.lag_histogram r in
          let pct p =
            if H.count lagh = 0 then "-" else Printf.sprintf "%.2f" (H.percentile lagh p)
          in
          Printf.printf "%-12s %-8s %6d %8d %8d %5d %9s %9s\n"
            (Printf.sprintf "shard-%d.r%d" i j)
            "replica" (Replica.epoch r) (Replica.shipped_seq r) (Replica.applied_seq r)
            (Replica.shipped_seq r - Replica.applied_seq r)
            (pct 0.5) (pct 0.95))
        (Cluster.replicas_of cluster i)
    done;
    let get = Afs_util.Stats.Counter.get (Cluster.counters cluster) in
    Printf.printf
      "replication: %d batches shipped, %d applied; %d promotions, %d fenced publishes\n"
      (get "replica.shipped") (get "replica.applied") (get "promotions")
      (get "replica.fenced")
  end

(* {2 simulate} *)

(* With [--trace FILE] every event streams straight to a catapult JSON
   document; nothing is buffered beyond the open channel. *)
let open_trace_sink engine trace_file =
  match trace_file with
  | None -> None
  | Some path ->
      let oc = open_out path in
      let w = Afs_trace.Catapult.writer (output_string oc) in
      let tr =
        Afs_trace.Trace.stream
          ~now:(fun () -> Afs_sim.Engine.now engine)
          (Afs_trace.Catapult.emit w)
      in
      Afs_sim.Engine.set_trace engine tr;
      Some (path, oc, w, tr)

let close_trace_sink = function
  | None -> ()
  | Some (path, oc, w, tr) ->
      Afs_trace.Catapult.finish w;
      close_out oc;
      Printf.printf "trace: %d events -> %s\n" (Afs_trace.Trace.events_emitted tr) path

let simulate system shards replicas clients duration_s think_ms nfiles pages theta
    cross_ratio cache_capacity group_commit kill_primary failover_ms trace_file =
  let open Afs_workload in
  let shape =
    {
      Workload.small_updates with
      nfiles;
      pages_per_file = pages;
      file_theta = theta;
      page_theta = theta;
    }
  in
  let engine = Afs_sim.Engine.create () in
  let trace_sink = open_trace_sink engine trace_file in
  let trace = Afs_sim.Engine.trace engine in
  let config =
    {
      Driver.default_config with
      clients;
      duration_ms = duration_s *. 1000.0;
      think_ms;
    }
  in
  let cluster_ref = ref None in
  let bare = ref [] in
  let transfer_ctx = ref None in
  let initial_balance = 1_000 in
  let make_cluster () =
    let cluster =
      Afs_cluster.Cluster.create ~latency_ms:2.0 ?cache_capacity ~group_commit
        ~replicas ~trace engine ~shards
    in
    cluster_ref := Some cluster;
    schedule_kill engine cluster ~replicas ~failover_ms ~trace kill_primary;
    cluster
  in
  let sut, gen =
    match system with
    | "afs" when cross_ratio <> None ->
        (* The cross-shard banking mix, run through the optimistic
           transaction coordinator (lib/txn). *)
        let tshape =
          {
            Workload.bank_transfers with
            accounts = max nfiles (2 * shards);
            objects = 2 * shards;
            shards;
            cross_ratio = Option.get cross_ratio;
            account_theta = theta;
          }
        in
        let cluster = make_cluster () in
        let files = ok (Workload.setup_accounts cluster tshape ~initial_balance) in
        let client = Afs_cluster.Cluster_client.connect cluster in
        transfer_ctx := Some (client, tshape, files);
        (Sut.afs_txn ~trace client ~files, Workload.transfer tshape)
    | "afs" when shards > 1 || replicas > 0 ->
        let cluster = make_cluster () in
        let files = ok (Workload.setup_cluster cluster shape ~initial:(bytes "0")) in
        ( Sut.afs_cluster (Afs_cluster.Cluster_client.connect cluster) ~files,
          Workload.make shape )
    | "afs" ->
        let store = Store.memory () in
        let srv = Server.create ?cache_capacity ~group_commit ~trace store in
        bare := [ srv ];
        let files = ok (Workload.setup_pages srv shape ~initial:(bytes "0")) in
        let host = Afs_rpc.Remote.host ~latency_ms:2.0 engine ~name:"afs" srv in
        (Sut.afs_remote (Afs_rpc.Remote.connect [ host ]) ~fallback:srv ~files,
         Workload.make shape)
    | "2pl" ->
        let backend =
          Afs_baseline.Twopl.create ~vulnerable_after_ms:2000.0 ~trace
            ~clock:(fun () -> Afs_sim.Engine.now engine)
            ()
        in
        ( Sut.twopl ~remote:engine backend ~pages_per_file:shape.Workload.pages_per_file
            ~retry_wait_ms:8.0,
          Workload.make shape )
    | "tso" ->
        let backend = Afs_baseline.Tsorder.create ~trace () in
        ( Sut.tsorder ~remote:engine backend ~pages_per_file:shape.Workload.pages_per_file,
          Workload.make shape )
    | other -> failwith (Printf.sprintf "unknown system %S (afs|2pl|tso)" other)
  in
  let report = Driver.run engine config sut ~gen in
  print_endline Driver.header_row;
  print_endline (Driver.report_row report);
  Printf.printf "retries: %s\n" (Driver.retry_histogram_row report);
  Printf.printf "%s\n" (Driver.abort_split_row report);
  (match !transfer_ctx with
  | None -> ()
  | Some (client, tshape, files) ->
      (* Resolve anything a deferred flip left in doubt, then audit the
         conserved total out of band. *)
      let swept = ref 0 in
      ignore
        (Afs_sim.Proc.spawn ~name:"sweeper" engine (fun () ->
             swept := ok (Afs_txn.Txn.sweep (Afs_txn.Txn.create client)
                            (Array.to_list files))));
      Afs_sim.Engine.run engine;
      let total = Workload.total_balance sut tshape in
      let expected = initial_balance * tshape.Workload.accounts in
      Printf.printf "conservation: swept %d in-doubt, total balance %d (expected %d)%s\n"
        !swept total expected
        (if total = expected then "" else "  ** VIOLATION **"));
  let servers =
    (* Read after the run: a promotion replaces a shard's server, and the
       promoted one carries the post-failover commit counters. *)
    match !cluster_ref with
    | Some cluster ->
        List.map Afs_cluster.Shard.server (Afs_cluster.Cluster.shards cluster)
    | None -> !bare
  in
  (match servers with
  | [] -> ()
  | servers ->
      let sum counter =
        List.fold_left
          (fun acc srv -> acc + Afs_util.Stats.Counter.get (Server.counters srv) counter)
          0 servers
      in
      let batches = sum "commits.batches" and members = sum "commits.batch_members" in
      if batches > 0 then
        Printf.printf "group commit: window %d, mean batch size %.2f (%d commits in %d batches)\n"
          group_commit
          (float_of_int members /. float_of_int batches)
          members batches
      else Printf.printf "group commit: off (window %d)\n" group_commit);
  (match !cluster_ref with
  | Some cluster -> replication_report cluster
  | None -> ());
  close_trace_sink trace_sink

(* {2 cluster} *)

let cluster_demo shards replicas clients duration_s think_ms nfiles theta rebalance_ms
    trace_file =
  let open Afs_workload in
  let module Cluster = Afs_cluster.Cluster in
  let module Shard = Afs_cluster.Shard in
  let shape =
    { Workload.small_updates with nfiles; file_theta = theta; page_theta = theta }
  in
  let engine = Afs_sim.Engine.create () in
  let trace_sink = open_trace_sink engine trace_file in
  let trace = Afs_sim.Engine.trace engine in
  let cluster = Cluster.create ~latency_ms:2.0 ~replicas ~trace engine ~shards in
  let files = ok (Workload.setup_cluster cluster shape ~initial:(bytes "0")) in
  let sut = Sut.afs_cluster (Afs_cluster.Cluster_client.connect cluster) ~files in
  let duration_ms = duration_s *. 1000.0 in
  let rebalancer = Afs_cluster.Rebalancer.create ~threshold:1.5 ~max_moves:4 cluster in
  ignore
    (Afs_sim.Proc.spawn ~name:"rebalancer" engine (fun () ->
         let rec loop () =
           Afs_sim.Proc.delay rebalance_ms;
           if Afs_sim.Engine.now engine < duration_ms then begin
             ignore (Afs_cluster.Rebalancer.step rebalancer);
             loop ()
           end
         in
         loop ()));
  let config =
    { Driver.default_config with clients; duration_ms; think_ms }
  in
  let report = Driver.run engine config sut ~gen:(Workload.make shape) in
  print_endline Driver.header_row;
  print_endline (Driver.report_row report);
  Printf.printf "retries: %s\n" (Driver.retry_histogram_row report);
  let counters = Cluster.counters cluster in
  let get = Afs_util.Stats.Counter.get counters in
  Printf.printf "\n%-10s %8s %10s %9s %10s\n" "shard" "files" "commits" "migr-in" "migr-out";
  List.iter
    (fun shard ->
      let i = Shard.id shard in
      Printf.printf "%-10s %8d %10d %9d %10d\n" (Shard.name shard)
        (List.length (Shard.resident_files shard))
        (get (Printf.sprintf "shard%d.commits" i))
        (get (Printf.sprintf "shard%d.migrations_in" i))
        (get (Printf.sprintf "shard%d.migrations_out" i)))
    (Cluster.shards cluster);
  Printf.printf
    "\nmigrations: %d done, %d lost races; rebalancer moves: %d; forwards learned: %d\n"
    (get "migrations") (get "migrations.conflict") (get "rebalancer.moves")
    (get "client.forwarded");
  replication_report cluster;
  close_trace_sink trace_sink

(* {2 trace} *)

let trace_report file slowest_n =
  let src =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Afs_trace.Catapult.parse src with
  | Error msg -> failwith msg
  | Ok events ->
      let module Q = Afs_trace.Query in
      Printf.printf "%-28s %10s\n" "kind" "count";
      List.iter
        (fun (kind, n) -> Printf.printf "%-28s %10d\n" kind n)
        (Q.kind_counts events);
      let spans = Q.slowest events slowest_n in
      if spans <> [] then begin
        Printf.printf "\nslowest spans:\n";
        Printf.printf "  %-12s %-16s %12s %10s %10s\n" "kind" "label" "start-ms" "dur-ms"
          "self-ms";
        List.iter
          (fun s ->
            Printf.printf "  %-12s %-16s %12.3f %10.3f %10.3f\n" s.Q.kind
              (if s.Q.label = "" then "-" else s.Q.label)
              s.Q.start_ms (Q.duration s) (Q.self_ms events s))
          spans
      end

(* {2 conflict} *)

let conflict_demo reads_a writes_a writes_b =
  let store = Store.memory () in
  let srv = Server.create store in
  let f = ok (Server.create_file srv ()) in
  let v0 = ok (Server.create_version srv f) in
  for i = 0 to 7 do
    ignore (ok (Server.insert_page srv v0 ~parent:P.root ~index:i ~data:(bytes "init") ()))
  done;
  ok (Server.commit srv v0);
  let va = ok (Server.create_version srv f) in
  let vb = ok (Server.create_version srv f) in
  List.iter (fun p -> ignore (ok (Server.read_page srv va (P.of_list [ p ])))) reads_a;
  List.iter (fun p -> ok (Server.write_page srv va (P.of_list [ p ]) (bytes "A"))) writes_a;
  List.iter (fun p -> ok (Server.write_page srv vb (P.of_list [ p ]) (bytes "B"))) writes_b;
  ok (Server.commit srv vb);
  Printf.printf "A reads {%s}, writes {%s}; B writes {%s} and commits first.\n"
    (String.concat "," (List.map string_of_int reads_a))
    (String.concat "," (List.map string_of_int writes_a))
    (String.concat "," (List.map string_of_int writes_b));
  match Server.commit srv va with
  | Ok () -> Printf.printf "verdict: SERIALISABLE — merged; both updates stand.\n"
  | Error Errors.Conflict ->
      Printf.printf "verdict: CONFLICT — B's write set intersects A's read set; A redoes.\n"
  | Error e -> failwith (Errors.to_string e)

(* {2 Command line} *)

let walkthrough_cmd =
  Cmd.v (Cmd.info "walkthrough" ~doc:"Annotated trace of the §5 mechanisms")
    Term.(const walkthrough $ const ())

let clients_arg = Arg.(value & opt int 16 & info [ "clients" ] ~doc:"Concurrent clients")

let duration_arg =
  Arg.(value & opt float 10.0 & info [ "duration" ] ~doc:"Simulated seconds")

let think_arg = Arg.(value & opt float 20.0 & info [ "think" ] ~doc:"Mean think time (ms)")
let nfiles_arg = Arg.(value & opt int 32 & info [ "files" ] ~doc:"Number of files")

let replicas_arg =
  Arg.(
    value & opt int 0
    & info [ "replicas" ] ~docv:"N"
        ~doc:
          "Log-shipping replicas per shard (0 = unreplicated; the report then matches \
           an unreplicated cluster bit for bit)")

let kill_primary_conv =
  let parse s =
    match String.index_opt s '@' with
    | Some i -> (
        try
          Ok
            ( int_of_string (String.sub s 0 i),
              float_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
        with _ -> Error (`Msg "expected SHARD@MS, e.g. 2@3000"))
    | None -> Error (`Msg "expected SHARD@MS, e.g. 2@3000")
  in
  let print ppf (k, ms) = Format.fprintf ppf "%d@%g" k ms in
  Arg.conv (parse, print)

let kill_primary_arg =
  Arg.(
    value
    & opt (some kill_primary_conv) None
    & info [ "kill-primary" ] ~docv:"SHARD@MS"
        ~doc:
          "Crash shard $(i,SHARD)'s primary at simulated time $(i,MS) and fail over to \
           its first replica (requires --replicas >= 1)")

let failover_ms_arg =
  Arg.(
    value & opt float 25.0
    & info [ "failover-ms" ] ~docv:"MS"
        ~doc:"Detection delay between the kill and the promotion (simulated ms)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Stream a Chrome trace-event (catapult) JSON trace of the run to $(docv)")

let simulate_cmd =
  let system =
    Arg.(value & opt string "afs" & info [ "system" ] ~docv:"afs|2pl|tso" ~doc:"System under test")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Shard the afs service across N servers (afs only; 1 = single bare server)")
  in
  let pages = Arg.(value & opt int 16 & info [ "pages" ] ~doc:"Pages per file") in
  let theta = Arg.(value & opt float 0.0 & info [ "theta" ] ~doc:"Zipf skew (0 = uniform)") in
  let cross_ratio =
    Arg.(
      value
      & opt (some float) None
      & info [ "cross-shard-ratio" ] ~docv:"R"
          ~doc:
            "Switch to the cross-shard banking mix (transfers and moves) run through \
             the optimistic transaction coordinator: fraction $(docv) of transactions \
             pair files on different shards (afs only)")
  in
  let cache_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ] ~docv:"BLOCKS"
          ~doc:"Server page-cache capacity in blocks (afs only; default 4096)")
  in
  let group_commit =
    Arg.(
      value & opt int 1
      & info [ "group-commit" ] ~docv:"N"
          ~doc:
            "Commit batch window per server: up to N queued commits validate together and \
             share one stable-storage leg (afs only; 1 = no batching)")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the multi-client workload driver")
    Term.(
      const simulate $ system $ shards $ replicas_arg $ clients_arg $ duration_arg
      $ think_arg $ nfiles_arg $ pages $ theta $ cross_ratio $ cache_capacity
      $ group_commit $ kill_primary_arg $ failover_ms_arg $ trace_arg)

let cluster_cmd =
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc:"Number of shard servers")
  in
  let theta =
    Arg.(
      value & opt float 0.9
      & info [ "theta" ] ~docv:"SKEW"
          ~doc:"Zipf skew over files (skew is what gives the rebalancer work)")
  in
  let rebalance =
    Arg.(
      value & opt float 250.0
      & info [ "rebalance-every" ] ~docv:"MS" ~doc:"Rebalancer period (simulated ms)")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Run a skewed workload on a shard cluster with online rebalancing")
    Term.(
      const cluster_demo $ shards $ replicas_arg $ clients_arg $ duration_arg $ think_arg
      $ nfiles_arg $ theta $ rebalance $ trace_arg)

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Catapult JSON trace")
  in
  let slowest =
    Arg.(value & opt int 10 & info [ "slowest" ] ~docv:"N" ~doc:"Show the N slowest spans")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Summarise a trace file written by simulate --trace")
    Term.(const trace_report $ file $ slowest)

let conflict_cmd =
  let ints name doc = Arg.(value & opt (list int) [] & info [ name ] ~doc) in
  Cmd.v (Cmd.info "conflict" ~doc:"Check a two-transaction schedule for serialisability")
    Term.(
      const conflict_demo $ ints "reads-a" "Pages A reads" $ ints "writes-a" "Pages A writes"
      $ ints "writes-b" "Pages B writes (B commits first)")

let () =
  let doc = "Amoeba File Service demonstrator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "afs_cli" ~doc)
          [ walkthrough_cmd; simulate_cmd; cluster_cmd; conflict_cmd; trace_cmd ]))
